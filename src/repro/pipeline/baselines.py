"""Baseline pipelines: classic HOG features into DNN, SVM or encoded HDC.

These are the comparison systems of paper Fig. 4 and Table 2:

* ``"dnn"`` - HOG -> 4-layer MLP (the paper's DNN baseline);
* ``"svm"`` - HOG -> linear SVM;
* ``"hdc"`` - HOG -> nonlinear encoder -> HDC classifier (HDFace
  configuration 1: learning in hyperspace but feature extraction on the
  original representation).

All three share one :class:`repro.features.hog.HOGDescriptor`, honouring the
paper's "all learning modules use the same HOG feature extraction".
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng
from ..features.hog import HOGDescriptor
from ..learning.encoders import NonlinearEncoder
from ..learning.hdc_classifier import HDCClassifier
from ..learning.mlp import MLPClassifier
from ..learning.svm import LinearSVM

__all__ = ["HOGPipeline"]


class HOGPipeline:
    """Classic-HOG front end with a selectable back-end learner.

    Parameters
    ----------
    model:
        ``"dnn"``, ``"svm"`` or ``"hdc"``.
    n_classes:
        Output classes.
    image_size:
        Side of the (square) input images; fixes the HOG feature length so
        the back end can be constructed eagerly.
    cell_size, n_bins, magnitude, gamma:
        HOG parameters (shared with the hyperspace pipeline for fair
        comparison).
    hidden:
        Hidden sizes of the DNN back end.
    dim:
        Hypervector dimensionality of the HDC back end.
    epochs:
        Training epochs of the selected back end.
    seed_or_rng:
        Randomness for the back end (HOG itself is deterministic).
    """

    def __init__(self, model, n_classes, image_size, cell_size=8, n_bins=8,
                 magnitude="l2_scaled", gamma=True, hidden=(1024, 1024),
                 dim=4096, epochs=None, seed_or_rng=None, **model_kwargs):
        if model not in ("dnn", "svm", "hdc"):
            raise ValueError(f"unknown model {model!r}")
        rng = as_rng(seed_or_rng)
        self.model_kind = model
        self.n_classes = int(n_classes)
        self.hog = HOGDescriptor(cell_size=cell_size, n_bins=n_bins,
                                 magnitude=magnitude, gamma=gamma)
        self.n_features = self.hog.feature_length((image_size, image_size))
        self.encoder = None
        if model == "dnn":
            self.learner = MLPClassifier(
                self.n_features, n_classes, hidden=hidden,
                epochs=30 if epochs is None else epochs,
                seed_or_rng=rng, **model_kwargs,
            )
        elif model == "svm":
            self.learner = LinearSVM(
                self.n_features, n_classes,
                epochs=20 if epochs is None else epochs,
                seed_or_rng=rng, **model_kwargs,
            )
        else:
            self.encoder = NonlinearEncoder(dim, self.n_features, seed_or_rng=rng)
            self.learner = HDCClassifier(
                n_classes, epochs=20 if epochs is None else epochs,
                seed_or_rng=rng, **model_kwargs,
            )

    # ------------------------------------------------------------------
    def extract(self, images, injector=None):
        """HOG features (encoded into hyperspace for the HDC back end)."""
        feats = self.hog.extract_batch(np.asarray(images), injector)
        if self.encoder is not None:
            feats = self.encoder.encode(feats)
        return feats

    def features(self, images, injector=None):
        """Raw HOG features without encoding (for feature-level reuse)."""
        return self.hog.extract_batch(np.asarray(images), injector)

    def fit(self, images, labels, injector=None):
        """Extract features and train the back end; returns ``self``."""
        self.learner.fit(self.extract(images, injector), np.asarray(labels))
        return self

    def fit_features(self, feats, labels):
        """Train on precomputed raw HOG features."""
        feats = np.asarray(feats)
        if self.encoder is not None:
            feats = self.encoder.encode(feats)
        self.learner.fit(feats, np.asarray(labels))
        return self

    def predict(self, images, injector=None):
        """Predict labels for an image batch."""
        return self.learner.predict(self.extract(images, injector))

    def score(self, images, labels, injector=None):
        """Mean accuracy on an image batch."""
        pred = self.predict(images, injector)
        return float((pred == np.asarray(labels)).mean())

"""Persistence for trained HDFace pipelines.

An HDFace model is tiny - one codec basis, the intensity codebook seed
state, the positional bin keys and the class hypervectors - so a trained
pipeline serializes to a single compressed ``.npz`` file.  Loading rebuilds
a pipeline whose predictions are bit-identical to the saved one (extraction
randomness is re-seeded from the stored construction-stream state).

Because stochastic extraction consumes RNG state, two *different* loaded
copies produce statistically identical (not bitwise identical) queries for
the same image; the stored class model is exactly preserved, which is what
determines predictions.
"""

from __future__ import annotations

import numpy as np

from ..core.stochastic import StochasticCodec
from ..features.hog_hd import HDHOGExtractor
from ..learning.hdc_classifier import HDCClassifier
from .hdface import HDFacePipeline

__all__ = ["save_pipeline", "load_pipeline"]

_FORMAT_VERSION = 1


def save_pipeline(pipeline, path):
    """Serialize a fitted :class:`~repro.pipeline.hdface.HDFacePipeline`.

    Parameters
    ----------
    pipeline:
        A fitted pipeline (raises if the classifier has no model yet).
    path:
        Destination ``.npz`` path.
    """
    clf = pipeline.classifier
    if clf.class_hvs_ is None:
        raise RuntimeError("cannot save an unfitted pipeline")
    ext = pipeline.extractor
    np.savez_compressed(
        path,
        format_version=_FORMAT_VERSION,
        dim=ext.dim,
        cell_size=ext.cell_size,
        n_bins=ext.n_bins,
        levels=ext.levels,
        magnitude=np.bytes_(ext.magnitude.encode()),
        sqrt_iters=ext.sqrt_iters,
        gamma=ext.gamma,
        basis=ext.codec.basis,
        pixel_table=ext._pixel_table,
        bin_keys=ext._bin_keys,
        n_classes=clf.n_classes,
        class_hvs=clf.class_hvs_,
        lr=clf.lr,
        epochs=clf.epochs,
        batch_size=clf.batch_size,
        adaptive=clf.adaptive,
    )


def load_pipeline(path, seed_or_rng=None):
    """Rebuild a fitted pipeline saved by :func:`save_pipeline`.

    ``seed_or_rng`` seeds the *new* extraction randomness (averages,
    histogram sampling); the learned model, basis, codebook and keys are
    restored exactly.
    """
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported pipeline format v{version}")
        dim = int(data["dim"])
        codec = StochasticCodec(dim, seed_or_rng=seed_or_rng,
                                basis=data["basis"])
        extractor = HDHOGExtractor(
            dim=dim,
            cell_size=int(data["cell_size"]),
            n_bins=int(data["n_bins"]),
            levels=int(data["levels"]),
            magnitude=bytes(data["magnitude"]).decode(),
            sqrt_iters=int(data["sqrt_iters"]),
            gamma=bool(data["gamma"]),
            seed_or_rng=codec.rng,
            codec=codec,
        )
        extractor._pixel_table = data["pixel_table"].astype(np.int8)
        extractor._bin_keys = data["bin_keys"].astype(np.int8)
        extractor._key_cache = {}

        classifier = HDCClassifier(
            int(data["n_classes"]),
            lr=float(data["lr"]),
            epochs=int(data["epochs"]),
            batch_size=int(data["batch_size"]),
            adaptive=bool(data["adaptive"]),
            seed_or_rng=codec.rng,
        )
        classifier.class_hvs_ = data["class_hvs"].astype(np.float64)

    pipeline = HDFacePipeline.__new__(HDFacePipeline)
    pipeline.extractor = extractor
    pipeline.classifier = classifier
    pipeline.dim = dim
    pipeline.n_classes = classifier.n_classes
    return pipeline

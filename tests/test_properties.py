"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *any* input in the domain: dataset images
stay in [0, 1]; integral-image rectangle sums match brute force; LBP is
invariant to monotone intensity maps; packing round-trips; bundling
preserves membership similarity; HOG features are finite and non-negative.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypervector import pack_bits, random_hypervector, unpack_bits
from repro.core.ops import bundle, similarity
from repro.datasets.emotion import EMOTIONS, draw_emotion_face
from repro.datasets.faces import draw_face, draw_nonface, random_face_params
from repro.features.haar import integral_image
from repro.features.hog import HOGDescriptor
from repro.features.lbp import lbp_codes

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=25, deadline=None)
@given(seed=seeds, jitter=st.floats(min_value=0.0, max_value=1.0),
       size=st.sampled_from([16, 24, 48]))
def test_faces_always_in_unit_range(seed, jitter, size):
    rng = np.random.default_rng(seed)
    img = draw_face(size, random_face_params(rng, jitter), rng)
    assert img.shape == (size, size)
    assert img.min() >= 0.0 and img.max() <= 1.0
    assert np.isfinite(img).all()


@settings(max_examples=25, deadline=None)
@given(seed=seeds, size=st.sampled_from([16, 32]))
def test_nonfaces_always_in_unit_range(seed, size):
    rng = np.random.default_rng(seed)
    img = draw_nonface(size, rng)
    assert img.min() >= 0.0 and img.max() <= 1.0


@settings(max_examples=20, deadline=None)
@given(seed=seeds, emotion=st.sampled_from(EMOTIONS))
def test_emotions_always_in_unit_range(seed, emotion):
    rng = np.random.default_rng(seed)
    img = draw_emotion_face(24, emotion, rng)
    assert img.min() >= 0.0 and img.max() <= 1.0


@settings(max_examples=30, deadline=None)
@given(seed=seeds,
       y=st.integers(0, 7), x=st.integers(0, 7),
       h=st.integers(1, 8), w=st.integers(1, 8))
def test_integral_image_rectangle_sums(seed, y, x, h, w):
    rng = np.random.default_rng(seed)
    img = rng.random((16, 16))
    ii = integral_image(img)
    brute = img[y : y + h, x : x + w].sum()
    fast = ii[y + h, x + w] - ii[y, x + w] - ii[y + h, x] + ii[y, x]
    assert abs(brute - fast) < 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=seeds, gain=st.floats(min_value=0.1, max_value=0.9),
       offset=st.floats(min_value=0.0, max_value=0.1))
def test_lbp_monotone_invariance(seed, gain, offset):
    rng = np.random.default_rng(seed)
    img = rng.random((12, 12))
    assert (lbp_codes(img) == lbp_codes(img * gain + offset)).all()


@settings(max_examples=25, deadline=None)
@given(seed=seeds, dim=st.sampled_from([64, 100, 129, 4096]))
def test_pack_unpack_roundtrip(seed, dim):
    hv = random_hypervector(dim, seed)
    assert (unpack_bits(pack_bits(hv), dim) == hv).all()


@settings(max_examples=20, deadline=None)
@given(seed=seeds, n=st.integers(min_value=3, max_value=9))
def test_bundle_similar_to_members(seed, n):
    if n % 2 == 0:
        n += 1  # odd counts avoid ties
    hvs = random_hypervector(4096, seed, shape=(n,))
    out = bundle(hvs)
    sims = [float(similarity(out, hv)) for hv in hvs]
    # every member is much more similar to the bundle than a random vector
    assert min(sims) > 0.1


@settings(max_examples=15, deadline=None)
@given(seed=seeds)
def test_hog_features_finite_nonnegative(seed):
    rng = np.random.default_rng(seed)
    img = rng.random((16, 16))
    feats = HOGDescriptor(cell_size=8, n_bins=8).extract(img)
    assert np.isfinite(feats).all()
    assert (feats >= 0).all()

"""Cross-module integration tests: small versions of the paper experiments.

These run miniature versions of each evaluation-section experiment to pin
the *shapes* the benchmark harness later reproduces at full scale.
"""

import numpy as np
import pytest

from repro import HDFacePipeline, HOGPipeline
from repro.datasets import load
from repro.noise import (
    dnn_robustness,
    hdface_hyperspace_robustness,
    hdface_original_hog_robustness,
)


@pytest.fixture(scope="module")
def face_task():
    return load("FACE2", scale="test", seed=0)


class TestFig4Shape:
    """All four learners reach competitive accuracy on the shared task."""

    def test_all_systems_learn_face_task(self, face_data):
        xtr, ytr, xte, yte = face_data
        scores = {}
        scores["hdface"] = HDFacePipeline(
            2, dim=2048, cell_size=8, magnitude="l1", epochs=10, seed_or_rng=0
        ).fit(xtr, ytr).score(xte, yte)
        for kind in ("svm", "hdc"):
            scores[kind] = HOGPipeline(
                kind, 2, image_size=24, dim=2048, seed_or_rng=0
            ).fit(xtr, ytr).score(xte, yte)
        scores["dnn"] = HOGPipeline(
            "dnn", 2, image_size=24, hidden=(32, 32), seed_or_rng=0
        ).fit(xtr, ytr).score(xte, yte)
        for name, acc in scores.items():
            assert acc > 0.7, f"{name} failed to learn: {acc}"
        # stochastic-HOG HDFace stays within reach of encoded HDC (paper:
        # "same quality of detection")
        assert scores["hdface"] > scores["hdc"] - 0.2


class TestTable2Shape:
    """Hyperspace HDFace out-survives original-space HOG under bit errors."""

    def test_robustness_ordering(self, face_data):
        xtr, ytr, xte, yte = face_data
        rates = (0.0, 0.08)
        hd = HDFacePipeline(2, dim=2048, cell_size=8, magnitude="l1",
                            epochs=10, seed_or_rng=0).fit(xtr, ytr)
        hd_res = hdface_hyperspace_robustness(hd, xte, yte, rates, seed_or_rng=0)

        orig = HOGPipeline("hdc", 2, image_size=24, dim=2048,
                           seed_or_rng=0).fit(xtr, ytr)
        orig_res = hdface_original_hog_robustness(orig, xte, yte, rates,
                                                  bits=16, seed_or_rng=0)
        # average over repeated trials to stabilize the tiny test set
        hd_loss = hd_res.losses()[0.08]
        orig_loss = orig_res.losses()[0.08]
        assert hd_loss <= orig_loss + 10.0

    def test_dnn_precision_tradeoff(self, face_data):
        from repro.learning import MLPClassifier
        xtr, ytr, xte, yte = face_data
        pipe = HOGPipeline("svm", 2, image_size=24)
        ftr, fte = pipe.features(xtr), pipe.features(xte)
        mlp = MLPClassifier(ftr.shape[1], 2, hidden=(32,), epochs=40,
                            seed_or_rng=0).fit(ftr, ytr)
        res16 = dnn_robustness(mlp, fte, yte, (0.0, 0.1), 16, seed_or_rng=0)
        res4 = dnn_robustness(mlp, fte, yte, (0.0, 0.1), 4, seed_or_rng=0)
        # 16-bit clean >= 4-bit clean (quantization cost)...
        assert res16[0.0] >= res4[0.0] - 0.1
        # ...but 16-bit loses at least as much under errors (fragility)
        assert res16.losses()[0.1] >= res4.losses()[0.1] - 10.0


class TestFig5Shape:
    def test_dimensionality_improves_accuracy(self, face_task):
        xtr, ytr, xte, yte = face_task
        accs = []
        for dim in (256, 2048):
            pipe = HDFacePipeline(2, dim=dim, cell_size=8, magnitude="l1",
                                  epochs=10, seed_or_rng=0).fit(xtr, ytr)
            accs.append(pipe.score(xte, yte))
        assert accs[-1] >= accs[0]


class TestFig6Shape:
    def test_detection_map_workflow(self, face_data):
        from repro.pipeline import SlidingWindowDetector, make_scene
        from repro.viz import ascii_map, render_detection
        xtr, ytr, _, _ = face_data
        pipe = HDFacePipeline(2, dim=2048, cell_size=8, magnitude="l1",
                              epochs=10, seed_or_rng=0).fit(xtr, ytr)
        scene, truth = make_scene(72, [(24, 24)], window=24, seed_or_rng=0)
        det = SlidingWindowDetector(pipe, window=24, stride=24)
        result = det.scan(scene)
        overlay = render_detection(scene, result)
        assert overlay.shape == scene.shape
        text = ascii_map(result.detections)
        assert len(text.splitlines()) == result.detections.shape[0]


class TestFig7Shape:
    def test_report_structure(self):
        from repro.hardware import fig7_report
        rows = fig7_report(datasets=("EMOTION",))
        assert {r.phase for r in rows} == {"training", "inference"}
        assert {r.platform for r in rows} == {"cpu", "fpga"}
        training = [r for r in rows if r.phase == "training"]
        assert all(r.speedup > 1 for r in training)


class TestEndToEndDeterminism:
    def test_same_seed_same_predictions(self, face_data):
        xtr, ytr, xte, _ = face_data
        preds = []
        for _ in range(2):
            pipe = HDFacePipeline(2, dim=1024, cell_size=8, magnitude="l1",
                                  epochs=5, seed_or_rng=42).fit(xtr, ytr)
            preds.append(pipe.predict(xte))
        assert (preds[0] == preds[1]).all()

"""Tests for the primitive error analysis behind Fig. 2."""

import numpy as np
import pytest

from repro.core.analysis import (
    average_std,
    construction_std,
    error_vs_dimension,
    measure_average_error,
    measure_construction_error,
    measure_divide_error,
    measure_multiplication_error,
    measure_sqrt_error,
    multiplication_std,
)


class TestTheory:
    def test_construction_std_formula(self):
        assert construction_std(0.0, 4096) == pytest.approx(1 / 64)
        assert construction_std(1.0, 4096) == 0.0

    def test_average_std_at_midpoint(self):
        # average of +1 and -1 represents 0 -> maximal variance
        assert average_std(1.0, -1.0, 1024) == pytest.approx(1 / 32)

    def test_multiplication_std_formula(self):
        assert multiplication_std(1.0, 1.0, 256) == 0.0
        assert multiplication_std(0.0, 0.5, 1024) == pytest.approx(1 / 32)

    def test_construction_measurement_matches_theory(self):
        # mean |error| of N(0, sigma) is sigma * sqrt(2/pi); values vary so
        # just check the same order of magnitude.
        dim = 4096
        measured = measure_construction_error(dim, trials=400, seed_or_rng=0)
        typical = float(construction_std(0.5, dim))
        assert 0.3 * typical < measured < 3.0 * typical


class TestMeasurement:
    @pytest.mark.parametrize("measure", [
        measure_construction_error,
        measure_average_error,
        measure_multiplication_error,
    ])
    def test_error_positive_and_small(self, measure):
        err = measure(2048, trials=100, seed_or_rng=0)
        assert 0.0 < err < 0.1

    def test_sqrt_error_small(self):
        assert measure_sqrt_error(4096, trials=20, seed_or_rng=0) < 0.1

    def test_divide_error_small(self):
        assert measure_divide_error(4096, trials=20, seed_or_rng=0) < 0.12

    def test_reproducible(self):
        a = measure_construction_error(1024, trials=50, seed_or_rng=7)
        b = measure_construction_error(1024, trials=50, seed_or_rng=7)
        assert a == b


class TestErrorVsDimension:
    def test_decreasing_trend(self):
        # the headline Fig. 2 shape
        series = error_vs_dimension([512, 2048, 8192], "construction",
                                    trials=300, seed=0)
        errs = [series[512], series[2048], series[8192]]
        assert errs[0] > errs[1] > errs[2]

    def test_multiplication_trend(self):
        series = error_vs_dimension([512, 8192], "multiplication",
                                    trials=300, seed=0)
        assert series[512] > series[8192]

    def test_inverse_sqrt_scaling(self):
        series = error_vs_dimension([1024, 16384], "construction",
                                    trials=500, seed=0)
        # 16x the dimension -> ~4x smaller error
        ratio = series[1024] / series[16384]
        assert 2.5 < ratio < 6.5

    def test_unknown_operation_raises(self):
        with pytest.raises(ValueError, match="unknown operation"):
            error_vs_dimension([256], "cube")

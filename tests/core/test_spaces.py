"""Tests for item and level memories (Fig. 1a base hypervector generation)."""

import numpy as np
import pytest

from repro.core.ops import similarity
from repro.core.spaces import ItemMemory, LevelMemory


class TestItemMemory:
    def test_lazy_allocation(self):
        mem = ItemMemory(256, 0)
        assert len(mem) == 0
        mem["face"]
        assert len(mem) == 1 and "face" in mem

    def test_same_symbol_same_vector(self):
        mem = ItemMemory(256, 0)
        assert (mem["a"] == mem["a"]).all()

    def test_different_symbols_nearly_orthogonal(self):
        mem = ItemMemory(10000, 0)
        assert abs(similarity(mem["a"], mem["b"])) < 0.05

    def test_cleanup_exact(self):
        mem = ItemMemory(1024, 0)
        for s in ("face", "no-face", "maybe"):
            mem[s]
        assert mem.cleanup(mem["no-face"]) == "no-face"

    def test_cleanup_noisy(self):
        mem = ItemMemory(4096, 0)
        for s in "abcde":
            mem[s]
        rng = np.random.default_rng(1)
        noisy = mem["c"].copy()
        flip = rng.random(4096) < 0.35
        noisy[flip] = -noisy[flip]
        assert mem.cleanup(noisy) == "c"

    def test_cleanup_empty_raises(self):
        with pytest.raises(LookupError):
            ItemMemory(64, 0).cleanup(np.ones(64, np.int8))

    def test_matrix_order(self):
        mem = ItemMemory(64, 0)
        mem["x"], mem["y"]
        assert mem.symbols() == ["x", "y"]
        assert mem.matrix().shape == (2, 64)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            ItemMemory(0)


class TestLevelMemory:
    @pytest.fixture(scope="class")
    def mem(self):
        return LevelMemory(dim=8192, levels=256, seed_or_rng=0)

    def test_extremes_nearly_orthogonal(self, mem):
        assert abs(similarity(mem.low, mem.high)) < 0.05

    def test_endpoints_match_extremes(self, mem):
        assert (mem.encode_level(0) == mem.low).all()
        assert (mem.encode_level(255) == mem.high).all()

    def test_midpoint_half_similar_to_both(self, mem):
        mid = mem.encode_level(128)
        # the paper's vector quantization property (Sec. 3)
        assert similarity(mid, mem.high) == pytest.approx(0.5, abs=0.06)
        assert similarity(mid, mem.low) == pytest.approx(0.5, abs=0.06)

    def test_adjacent_levels_highly_similar(self, mem):
        assert similarity(mem.encode_level(100), mem.encode_level(101)) > 0.98

    def test_similarity_monotone_in_distance(self, mem):
        ref = mem.encode_level(0)
        sims = [float(similarity(ref, mem.encode_level(j))) for j in (0, 64, 128, 192, 255)]
        assert all(a > b for a, b in zip(sims, sims[1:]))

    def test_encode_continuous_image(self, mem):
        img = np.linspace(0, 1, 12).reshape(3, 4)
        hvs = mem.encode(img)
        assert hvs.shape == (3, 4, 8192)

    def test_encode_clips_out_of_range(self, mem):
        assert (mem.encode(2.0) == mem.high).all()
        assert (mem.encode(-1.0) == mem.low).all()

    def test_decode_roundtrip(self, mem):
        for v in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert mem.decode(mem.encode(v)) == pytest.approx(v, abs=0.05)

    def test_level_out_of_range_raises(self, mem):
        with pytest.raises(ValueError):
            mem.encode_level(256)

    def test_bad_levels_raises(self):
        with pytest.raises(ValueError):
            LevelMemory(64, levels=1)

    def test_bad_range_raises(self, mem):
        with pytest.raises(ValueError):
            mem.encode(0.5, vmin=1.0, vmax=0.0)

    def test_explicit_endpoints(self):
        low = np.ones(128, np.int8)
        high = -np.ones(128, np.int8)
        mem = LevelMemory(128, levels=16, low=low, high=high, seed_or_rng=0)
        assert (mem.encode_level(0) == low).all()
        assert (mem.encode_level(15) == high).all()

    def test_table_read_only(self, mem):
        with pytest.raises(ValueError):
            mem.table[0, 0] = 5

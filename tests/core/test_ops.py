"""Tests for the HDC algebra: bundle, bind, permute, similarity, cleanup."""

import numpy as np
import pytest

from repro.core.hypervector import random_hypervector
from repro.core.ops import (
    bind,
    bundle,
    cosine_similarity,
    hamming_similarity,
    nearest,
    permute,
    similarity,
)


@pytest.fixture
def three_hvs():
    rng = np.random.default_rng(0)
    return random_hypervector(10000, rng, shape=(3,))


class TestBundle:
    def test_majority_of_identical_is_identity(self, three_hvs):
        a = three_hvs[0]
        assert (bundle(np.stack([a, a, a])) == a).all()

    def test_bundle_similar_to_all_inputs(self, three_hvs):
        out = bundle(three_hvs)
        for hv in three_hvs:
            assert similarity(out, hv) > 0.3

    def test_result_is_bipolar(self, three_hvs):
        assert set(np.unique(bundle(three_hvs))) <= {-1, 1}

    def test_tie_break_deterministic_without_rng(self):
        a = np.array([[1, -1], [-1, 1]], dtype=np.int8)
        assert (bundle(a) == 1).all()

    def test_tie_break_random_is_unbiased(self):
        rng = np.random.default_rng(0)
        a = np.stack([np.ones(10000, np.int8), -np.ones(10000, np.int8)])
        out = bundle(a, rng=rng)
        assert abs(out.mean()) < 0.05

    def test_bundle_axis(self, three_hvs):
        stacked = np.stack([three_hvs, -three_hvs], axis=1)  # (3, 2, D)
        out = bundle(stacked, axis=1)
        assert out.shape == (3, 10000)


class TestBind:
    def test_self_inverse(self, three_hvs):
        a, b = three_hvs[0], three_hvs[1]
        assert (bind(bind(a, b), b) == a).all()

    def test_result_dissimilar_to_inputs(self, three_hvs):
        a, b = three_hvs[0], three_hvs[1]
        bound = bind(a, b)
        assert abs(similarity(bound, a)) < 0.05
        assert abs(similarity(bound, b)) < 0.05

    def test_distance_preserving(self, three_hvs):
        a, b, k = three_hvs
        # binding both with the same key preserves their similarity
        assert similarity(bind(a, k), bind(b, k)) == pytest.approx(
            similarity(a, b)
        )

    def test_float_inputs_work(self):
        a = np.array([1.0, -1.0])
        assert bind(a, a).tolist() == [1, 1]


class TestPermute:
    def test_roll_and_inverse(self, three_hvs):
        a = three_hvs[0]
        assert (permute(permute(a, 5), -5) == a).all()

    def test_permuted_nearly_orthogonal(self, three_hvs):
        a = three_hvs[0]
        assert abs(similarity(permute(a), a)) < 0.05

    def test_preserves_similarity(self, three_hvs):
        a, b = three_hvs[0], three_hvs[1]
        assert similarity(permute(a, 3), permute(b, 3)) == pytest.approx(
            similarity(a, b)
        )


class TestSimilarity:
    def test_self_similarity_is_one(self, three_hvs):
        assert similarity(three_hvs[0], three_hvs[0]) == pytest.approx(1.0)

    def test_negation_is_minus_one(self, three_hvs):
        assert similarity(three_hvs[0], -three_hvs[0]) == pytest.approx(-1.0)

    def test_hamming_relation(self, three_hvs):
        a, b = three_hvs[0], three_hvs[1]
        assert similarity(a, b) == pytest.approx(2 * hamming_similarity(a, b) - 1)

    def test_cosine_equals_delta_for_bipolar(self, three_hvs):
        a, b = three_hvs[0], three_hvs[1]
        assert cosine_similarity(a, b) == pytest.approx(similarity(a, b))

    def test_cosine_scale_invariant(self, three_hvs):
        a, b = three_hvs[0].astype(float), three_hvs[1].astype(float)
        assert cosine_similarity(3.0 * a, b) == pytest.approx(cosine_similarity(a, b))

    def test_batched_broadcast(self, three_hvs):
        sims = similarity(three_hvs, three_hvs[0])
        assert sims.shape == (3,)
        assert sims[0] == pytest.approx(1.0)


class TestNearest:
    def test_exact_match(self, three_hvs):
        for i in range(3):
            assert nearest(three_hvs[i], three_hvs) == i

    def test_noisy_match(self, three_hvs):
        rng = np.random.default_rng(5)
        noisy = three_hvs[1].copy()
        flip = rng.random(noisy.shape) < 0.3
        noisy[flip] = -noisy[flip]
        assert nearest(noisy, three_hvs) == 1

    @pytest.mark.parametrize("metric", ["cosine", "dot", "hamming"])
    def test_all_metrics(self, three_hvs, metric):
        assert nearest(three_hvs[2], three_hvs, metric=metric) == 2

    def test_unknown_metric_raises(self, three_hvs):
        with pytest.raises(ValueError, match="unknown metric"):
            nearest(three_hvs[0], three_hvs, metric="euclid")

    def test_batched_queries(self, three_hvs):
        idx = nearest(three_hvs, three_hvs)
        assert idx.tolist() == [0, 1, 2]

"""Property-based tests (hypothesis) for the stochastic arithmetic laws.

Each property is checked at D=4096, where decode noise is ~1.6% (one
sigma); tolerances are set at >5 sigma so the suite is stable across seeds
while still catching systematic bias.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stochastic import StochasticCodec

DIM = 4096
TOL = 0.09  # ~5.7 sigma at D=4096

values = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
unit_values = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@pytest.fixture(scope="module")
def make_codec():
    cache = {}

    def factory(seed):
        if seed not in cache:
            cache[seed] = StochasticCodec(DIM, seed)
        return cache[seed]

    return factory


@settings(max_examples=30, deadline=None)
@given(a=values, seed=seeds)
def test_construct_decode_inverse(make_codec, a, seed):
    codec = make_codec(seed % 4)
    assert abs(float(codec.decode(codec.construct(a))) - a) < TOL


@settings(max_examples=30, deadline=None)
@given(a=values, seed=seeds)
def test_negation_antisymmetric(make_codec, a, seed):
    codec = make_codec(seed % 4)
    hv = codec.construct(a)
    assert abs(float(codec.decode(codec.negate(hv))) + a) < TOL


@settings(max_examples=30, deadline=None)
@given(a=values, b=values, seed=seeds)
def test_average_is_midpoint(make_codec, a, b, seed):
    codec = make_codec(seed % 4)
    out = codec.add_half(codec.construct(a), codec.construct(b))
    assert abs(float(codec.decode(out)) - (a + b) / 2) < TOL


@settings(max_examples=30, deadline=None)
@given(a=values, b=values, seed=seeds)
def test_average_commutative_in_value(make_codec, a, b, seed):
    codec = make_codec(seed % 4)
    ab = codec.decode(codec.add_half(codec.construct(a), codec.construct(b)))
    ba = codec.decode(codec.add_half(codec.construct(b), codec.construct(a)))
    assert abs(float(ab) - float(ba)) < 2 * TOL


@settings(max_examples=30, deadline=None)
@given(a=values, b=values, seed=seeds)
def test_multiplication_correct_and_commutative(make_codec, a, b, seed):
    codec = make_codec(seed % 4)
    va, vb = codec.construct(a), codec.construct(b)
    ab = float(codec.decode(codec.multiply(va, vb)))
    ba = float(codec.decode(codec.multiply(vb, va)))
    assert abs(ab - a * b) < TOL
    assert ab == ba  # elementwise product is exactly commutative


@settings(max_examples=30, deadline=None)
@given(a=values, seed=seeds)
def test_multiplication_by_one_identity(make_codec, a, seed):
    codec = make_codec(seed % 4)
    out = codec.multiply(codec.construct(a), codec.one())
    assert abs(float(codec.decode(out)) - a) < TOL


@settings(max_examples=30, deadline=None)
@given(a=values, seed=seeds)
def test_square_nonnegative_and_correct(make_codec, a, seed):
    codec = make_codec(seed % 4)
    sq = float(codec.decode(codec.square(codec.construct(a))))
    assert sq > a * a - TOL
    assert abs(sq - a * a) < TOL


@settings(max_examples=15, deadline=None)
@given(a=st.floats(min_value=0.05, max_value=1.0), seed=seeds)
def test_sqrt_inverts_square(make_codec, a, seed):
    # Result noise scales as sigma / (2 sqrt(a)); assert on the mean of 8
    # independent replicas so the property is stable across orderings.
    codec = make_codec(seed % 4)
    roots = codec.decode(codec.sqrt(codec.construct(np.full(8, a)), iters=12))
    assert abs(float(np.mean(roots)) - np.sqrt(a)) < 0.08


@settings(max_examples=20, deadline=None)
@given(ratio=st.floats(min_value=-0.9, max_value=0.9),
       b=st.floats(min_value=0.4, max_value=1.0), seed=seeds)
def test_divide_inverts_multiply(make_codec, ratio, b, seed):
    # Quotient noise scales as sigma / b, hence the divisor floor; the
    # tolerance sits ~5 sigma above the worst case.
    codec = make_codec(seed % 4)
    a = ratio * b
    out = codec.divide(codec.construct(a), codec.construct(b), iters=12)
    assert abs(float(codec.decode(out)) - ratio) < 0.15


@settings(max_examples=30, deadline=None)
@given(a=values, b=values, seed=seeds)
def test_compare_consistent_with_values(make_codec, a, b, seed):
    codec = make_codec(seed % 4)
    if abs(a - b) < 0.2:  # skip cases inside the noise band
        return
    got = codec.compare(codec.construct(a), codec.construct(b))
    assert got == (1 if a > b else -1)


@settings(max_examples=30, deadline=None)
@given(a=values, seed=seeds)
def test_decorrelate_value_invariant(make_codec, a, seed):
    codec = make_codec(seed % 4)
    hv = codec.construct(a)
    assert abs(float(codec.decode(codec.decorrelate(hv))) - a) < TOL


@settings(max_examples=20, deadline=None)
@given(vals=st.lists(values, min_size=2, max_size=6), seed=seeds)
def test_mean_matches_arithmetic_mean(make_codec, vals, seed):
    codec = make_codec(seed % 4)
    arr = np.array(vals)
    out = codec.mean(codec.construct(arr))
    assert abs(float(codec.decode(out)) - arr.mean()) < TOL

"""Tests for hypervector generation, validation and bit packing."""

import numpy as np
import pytest

from repro.core.hypervector import (
    as_rng,
    ensure_bipolar,
    from_binary,
    is_bipolar,
    pack_bits,
    packed_hamming_distance,
    packed_popcount,
    packed_tail_mask,
    packed_words,
    random_hypervector,
    to_binary,
    unpack_bits,
)


class TestAsRng:
    def test_seed_gives_reproducible_generator(self):
        assert as_rng(7).integers(1000) == as_rng(7).integers(1000)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)


class TestRandomHypervector:
    def test_shape_and_dtype(self):
        hv = random_hypervector(256, 0, shape=(3, 2))
        assert hv.shape == (3, 2, 256)
        assert hv.dtype == np.int8

    def test_values_are_bipolar(self):
        hv = random_hypervector(1000, 0)
        assert set(np.unique(hv)) <= {-1, 1}

    def test_bias_probability(self):
        hv = random_hypervector(20000, 0, p=0.8)
        assert abs((hv == 1).mean() - 0.8) < 0.02

    def test_extreme_bias(self):
        assert (random_hypervector(100, 0, p=1.0) == 1).all()
        assert (random_hypervector(100, 0, p=0.0) == -1).all()

    def test_independent_vectors_nearly_orthogonal(self):
        rng = np.random.default_rng(0)
        a = random_hypervector(10000, rng)
        b = random_hypervector(10000, rng)
        assert abs(float(a @ b.astype(np.int64)) / 10000) < 0.05

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError):
            random_hypervector(0)

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            random_hypervector(10, p=1.5)


class TestBipolarChecks:
    def test_is_bipolar_true(self):
        assert is_bipolar(np.array([1, -1, 1], dtype=np.int8))

    def test_is_bipolar_false_on_zero(self):
        assert not is_bipolar(np.array([1, 0, -1]))

    def test_ensure_bipolar_casts(self):
        out = ensure_bipolar(np.array([1.0, -1.0]))
        assert out.dtype == np.int8

    def test_ensure_bipolar_raises(self):
        with pytest.raises(ValueError, match="must contain only"):
            ensure_bipolar(np.array([2, 1]))


class TestBinaryConversion:
    def test_roundtrip(self):
        hv = random_hypervector(64, 0)
        assert (from_binary(to_binary(hv)) == hv).all()

    def test_mapping_convention(self):
        assert to_binary(np.array([1, -1], dtype=np.int8)).tolist() == [1, 0]


class TestPacking:
    @pytest.mark.parametrize("dim", [64, 128, 4096, 100, 65])
    def test_pack_unpack_roundtrip(self, dim):
        hv = random_hypervector(dim, 3)
        assert (unpack_bits(pack_bits(hv), dim) == hv).all()

    def test_packed_shape(self):
        hv = random_hypervector(128, 0, shape=(5,))
        assert pack_bits(hv).shape == (5, 2)

    def test_popcount_matches_dense(self):
        hv = random_hypervector(4096, 0)
        assert packed_popcount(pack_bits(hv)) == (hv == 1).sum()

    def test_hamming_distance_matches_dense(self):
        a = random_hypervector(4096, 0)
        b = random_hypervector(4096, 1)
        expected = int((a != b).sum())
        assert packed_hamming_distance(pack_bits(a), pack_bits(b)) == expected

    def test_hamming_distance_self_is_zero(self):
        w = pack_bits(random_hypervector(512, 0))
        assert packed_hamming_distance(w, w) == 0

    def test_batched_hamming(self):
        a = random_hypervector(256, 0, shape=(4,))
        b = random_hypervector(256, 1, shape=(4,))
        dist = packed_hamming_distance(pack_bits(a), pack_bits(b))
        assert dist.shape == (4,)
        assert (dist == (a != b).sum(axis=1)).all()

    @pytest.mark.parametrize("dim", [65, 100, 127])
    def test_popcount_ignores_poisoned_pad_bits(self, dim):
        # complementing ops (XNOR bind) set the pad bits; with dim= given
        # the count must still see only the real components
        hv = random_hypervector(dim, 5)
        words = pack_bits(hv)
        poisoned = words | ~packed_tail_mask(dim)
        assert packed_popcount(poisoned, dim=dim) == (hv == 1).sum()
        assert packed_popcount(words) == (hv == 1).sum()

    def test_hamming_ignores_poisoned_pad_bits(self):
        dim = 70
        a, b = random_hypervector(dim, 0), random_hypervector(dim, 1)
        pa = pack_bits(a) | ~packed_tail_mask(dim)
        assert packed_hamming_distance(pa, pack_bits(b), dim=dim) == (a != b).sum()

    def test_unpack_validates_word_count(self):
        words = pack_bits(random_hypervector(128, 0))
        with pytest.raises(ValueError):
            unpack_bits(words, 129)  # needs 3 words, got 2

    @pytest.mark.parametrize("dim", [64, 65])
    def test_empty_batch_roundtrip(self, dim):
        empty = np.empty((0, dim), dtype=np.int8)
        words = pack_bits(empty)
        assert words.shape == (0, packed_words(dim))
        assert unpack_bits(words, dim).shape == (0, dim)
        assert packed_popcount(words, dim=dim).shape == (0,)

    def test_packed_words_and_tail_mask(self):
        assert packed_words(64) == 1 and packed_words(65) == 2
        assert packed_tail_mask(64)[-1] == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert packed_tail_mask(65)[-1] == np.uint64(1)
        with pytest.raises(ValueError):
            packed_words(0)

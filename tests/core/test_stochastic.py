"""Tests for the stochastic arithmetic codec (paper Section 4).

The codec at D=8192 has decode noise ~0.011 (one sigma), so value
assertions use an absolute tolerance of 0.05 (>4 sigma).
"""

import numpy as np
import pytest

from repro.core.ops import similarity
from repro.core.stochastic import StochasticCodec

TOL = 0.05


class TestConstructDecode:
    @pytest.mark.parametrize("value", [-1.0, -0.7, -0.25, 0.0, 0.33, 0.8, 1.0])
    def test_roundtrip(self, codec, value):
        assert codec.decode(codec.construct(value)) == pytest.approx(value, abs=TOL)

    def test_construct_shape_and_dtype(self, codec):
        hv = codec.construct(np.zeros((2, 3)))
        assert hv.shape == (2, 3, codec.dim)
        assert hv.dtype == np.int8

    def test_batched_roundtrip(self, codec):
        vals = np.linspace(-1, 1, 13).reshape(13)
        assert np.abs(codec.decode(codec.construct(vals)) - vals).max() < TOL

    def test_out_of_range_raises(self, codec):
        with pytest.raises(ValueError, match=r"\[-1, 1\]"):
            codec.construct(1.5)

    def test_representation_is_similarity_to_basis(self, codec):
        hv = codec.construct(0.6)
        # delta(V_a, V_1) = a, the paper's defining property
        assert similarity(hv, codec.basis) == pytest.approx(0.6, abs=TOL)

    def test_one_is_basis(self, codec):
        assert (codec.construct(1.0) == codec.basis).all()

    def test_zero_orthogonal_to_basis(self, codec):
        assert abs(codec.decode(codec.zero())) < TOL

    def test_explicit_basis(self):
        basis = np.ones(256, np.int8)
        c = StochasticCodec(256, 0, basis=basis)
        assert (c.basis == basis).all()

    def test_bad_basis_raises(self):
        with pytest.raises(ValueError):
            StochasticCodec(256, 0, basis=np.zeros(256))

    def test_bad_dim_raises(self):
        with pytest.raises(ValueError):
            StochasticCodec(0)


class TestNegation:
    def test_negate_value(self, codec):
        hv = codec.construct(0.4)
        assert codec.decode(codec.negate(hv)) == pytest.approx(-0.4, abs=TOL)

    def test_negate_is_elementwise_minus(self, codec):
        hv = codec.construct(0.4)
        assert (codec.negate(hv) == -hv).all()


class TestAverage:
    def test_add_half(self, codec):
        a, b = 0.6, -0.2
        out = codec.add_half(codec.construct(a), codec.construct(b))
        assert codec.decode(out) == pytest.approx((a + b) / 2, abs=TOL)

    def test_sub_half(self, codec):
        a, b = 0.3, 0.9
        out = codec.sub_half(codec.construct(a), codec.construct(b))
        assert codec.decode(out) == pytest.approx((a - b) / 2, abs=TOL)

    @pytest.mark.parametrize("p", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_weighted(self, codec, p):
        a, b = 0.8, -0.6
        out = codec.average(codec.construct(a), codec.construct(b), p)
        assert codec.decode(out) == pytest.approx(p * a + (1 - p) * b, abs=TOL)

    def test_invalid_weight_raises(self, codec):
        va = codec.construct(0.0)
        with pytest.raises(ValueError):
            codec.average(va, va, 1.2)

    def test_batched(self, codec):
        a = codec.construct(np.full(4, 0.5))
        b = codec.construct(np.full(4, -0.5))
        out = codec.add_half(a, b)
        assert out.shape == (4, codec.dim)
        assert np.abs(codec.decode(out)).max() < TOL

    def test_scale(self, codec):
        out = codec.scale(codec.construct(0.8), 0.5)
        assert codec.decode(out) == pytest.approx(0.4, abs=TOL)

    def test_scale_bad_factor(self, codec):
        with pytest.raises(ValueError):
            codec.scale(codec.construct(0.5), 1.5)


class TestMean:
    def test_uniform(self, codec):
        vals = np.array([0.2, 0.6, -0.5, 0.1])
        out = codec.mean(codec.construct(vals))
        assert codec.decode(out) == pytest.approx(vals.mean(), abs=TOL)

    def test_weighted(self, codec):
        vals = np.array([1.0, -1.0])
        out = codec.mean(codec.construct(vals), weights=np.array([3.0, 1.0]))
        assert codec.decode(out) == pytest.approx(0.5, abs=TOL)

    def test_weight_length_mismatch(self, codec):
        with pytest.raises(ValueError):
            codec.mean(codec.construct(np.zeros(3)), weights=np.ones(2))

    def test_negative_weights_raise(self, codec):
        with pytest.raises(ValueError):
            codec.mean(codec.construct(np.zeros(2)), weights=np.array([-1.0, 2.0]))


class TestMultiplication:
    @pytest.mark.parametrize("a,b", [(0.5, 0.5), (-0.7, 0.4), (0.9, -0.9), (0.0, 0.8)])
    def test_product(self, codec, a, b):
        out = codec.multiply(codec.construct(a), codec.construct(b))
        assert codec.decode(out) == pytest.approx(a * b, abs=TOL)

    def test_multiply_by_one_is_identity_value(self, codec):
        va = codec.construct(0.6)
        out = codec.multiply(va, codec.one())
        assert codec.decode(out) == pytest.approx(0.6, abs=TOL)

    def test_naive_self_product_degenerates(self, codec):
        # V (x) V with a shared sign stream wrongly claims a*a = 1 - the
        # pitfall the decorrelation fixes.
        va = codec.construct(0.3)
        assert codec.decode(codec.multiply(va, va)) == pytest.approx(1.0, abs=1e-9)

    def test_square_uses_decorrelation(self, codec):
        va = codec.construct(0.6)
        assert codec.decode(codec.square(va)) == pytest.approx(0.36, abs=TOL)

    def test_square_of_negative(self, codec):
        va = codec.construct(-0.8)
        assert codec.decode(codec.square(va)) == pytest.approx(0.64, abs=TOL)

    def test_decorrelate_preserves_value(self, codec):
        va = codec.construct(0.45)
        assert codec.decode(codec.decorrelate(va)) == pytest.approx(0.45, abs=TOL)

    def test_decorrelate_decorrelates(self, codec):
        va = codec.construct(0.0)
        d = codec.decorrelate(va)
        signs_a = va * codec.basis
        signs_d = d * codec.basis
        corr = float((signs_a.astype(np.int64) * signs_d).mean())
        assert abs(corr) < TOL

    def test_decorrelate_noop_shift_raises(self, codec):
        with pytest.raises(ValueError):
            codec.decorrelate(codec.construct(0.2), shift=0)


class TestComparison:
    def test_greater(self, codec):
        assert codec.compare(codec.construct(0.5), codec.construct(-0.5)) == 1

    def test_less(self, codec):
        assert codec.compare(codec.construct(-0.2), codec.construct(0.2)) == -1

    def test_equal_with_tolerance(self, codec):
        va, vb = codec.construct(0.3), codec.construct(0.3)
        assert codec.compare(va, vb, tolerance=0.1) == 0

    def test_sign_of(self, codec):
        assert codec.sign_of(codec.construct(0.4)) == 1
        assert codec.sign_of(codec.construct(-0.4)) == -1
        assert codec.sign_of(codec.construct(0.0), tolerance=0.1) == 0

    def test_alpha_vector_represents_half_difference(self, codec):
        alpha = codec.alpha_vector(codec.construct(0.8), codec.construct(0.2))
        assert codec.decode(alpha) == pytest.approx(0.3, abs=TOL)

    def test_batched_compare(self, codec):
        a = codec.construct(np.array([0.5, -0.5]))
        b = codec.construct(np.array([-0.5, 0.5]))
        assert codec.compare(a, b).tolist() == [1, -1]

    def test_noise_floor(self, codec):
        assert codec.noise_floor() == pytest.approx(3.0 / np.sqrt(codec.dim))


class TestSqrt:
    @pytest.mark.parametrize("value", [0.04, 0.25, 0.49, 0.81, 1.0])
    def test_sqrt_unbiased(self, codec, value):
        # Result noise scales as sigma / (2 sqrt(a)), so assert on the mean
        # of a batch rather than a single noisy instance.
        out = codec.sqrt(codec.construct(np.full(16, value)), iters=12)
        assert codec.decode(out).mean() == pytest.approx(np.sqrt(value), abs=0.05)

    def test_sqrt_single_instance(self, codec):
        out = codec.sqrt(codec.construct(0.49), iters=12)
        assert codec.decode(out) == pytest.approx(0.7, abs=0.1)

    def test_sqrt_of_zero_converges_to_zero(self, codec):
        out = codec.sqrt(codec.construct(np.zeros(8)), iters=12)
        assert abs(codec.decode(out).mean()) < 0.1

    def test_batched_sqrt_shape(self, codec):
        vals = np.array([[0.09, 0.36], [0.64, 0.25]])
        out = codec.sqrt(codec.construct(vals), iters=12)
        assert out.shape == (2, 2, codec.dim)
        assert np.abs(codec.decode(out) - np.sqrt(vals)).max() < 0.15


class TestDivide:
    @pytest.mark.parametrize("a,b", [(0.2, 0.5), (0.45, 0.9), (-0.3, 0.6), (0.3, -0.6)])
    def test_quotient(self, codec, a, b):
        out = codec.divide(codec.construct(a), codec.construct(b), iters=12)
        assert codec.decode(out) == pytest.approx(a / b, abs=0.08)

    def test_saturates_at_one(self, codec):
        out = codec.divide(codec.construct(0.9), codec.construct(0.3), iters=12)
        assert codec.decode(out) == pytest.approx(1.0, abs=0.05)

    def test_sign_handling_both_negative(self, codec):
        out = codec.divide(codec.construct(-0.2), codec.construct(-0.4), iters=12)
        assert codec.decode(out) == pytest.approx(0.5, abs=0.08)


class TestRerandomize:
    def test_preserves_value(self, codec):
        va = codec.construct(0.62)
        assert codec.decode(codec.rerandomize(va)) == pytest.approx(0.62, abs=TOL)

    def test_breaks_correlation(self, codec):
        va = codec.construct(0.0)
        vr = codec.rerandomize(va)
        corr = float((va.astype(np.int64) * vr).mean())
        assert abs(corr) < TOL


class TestErrorScaling:
    def test_noise_shrinks_with_dimension(self):
        # The Fig. 2 trend: construction error ~ 1/sqrt(D).
        errs = []
        for dim in (256, 4096):
            c = StochasticCodec(dim, 0)
            vals = np.linspace(-0.9, 0.9, 50)
            errs.append(float(np.abs(c.decode(c.construct(vals)) - vals).mean()))
        assert errs[1] < errs[0] / 2

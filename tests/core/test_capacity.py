"""Tests for the bundling-capacity analysis."""

import numpy as np
import pytest

from repro.core.capacity import (
    capacity_estimate,
    expected_member_similarity,
    measure_member_similarity,
    measure_recall_accuracy,
)


class TestClosedForms:
    def test_single_item_full_similarity(self):
        assert expected_member_similarity(1) == 1.0

    def test_similarity_decays_with_bundle_size(self):
        sims = [expected_member_similarity(n) for n in (3, 11, 101)]
        assert sims[0] > sims[1] > sims[2] > 0

    def test_inverse_sqrt_law(self):
        assert expected_member_similarity(100) == pytest.approx(
            expected_member_similarity(25) / 2
        )

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            expected_member_similarity(0)

    def test_capacity_grows_with_dim(self):
        assert capacity_estimate(8192, 100) > capacity_estimate(1024, 100)

    def test_capacity_shrinks_with_distractors(self):
        assert capacity_estimate(4096, 10) >= capacity_estimate(4096, 10000)

    def test_capacity_invalid_args(self):
        with pytest.raises(ValueError):
            capacity_estimate(0, 10)


class TestMeasurements:
    def test_measured_matches_theory(self):
        for n in (5, 21):
            measured = measure_member_similarity(8192, n, trials=30,
                                                 seed_or_rng=0)
            assert measured == pytest.approx(
                expected_member_similarity(n), abs=0.03)

    def test_recall_perfect_below_capacity(self):
        n_ok = capacity_estimate(4096, 100) // 2
        acc = measure_recall_accuracy(4096, max(n_ok, 2), trials=20,
                                      seed_or_rng=0)
        assert acc == 1.0

    def test_recall_degrades_far_beyond_capacity(self):
        small_dim = 256
        n_over = capacity_estimate(small_dim, 100) * 40
        acc = measure_recall_accuracy(small_dim, n_over, trials=20,
                                      seed_or_rng=0)
        assert acc < 1.0

    def test_reproducible(self):
        a = measure_recall_accuracy(512, 10, trials=10, seed_or_rng=3)
        b = measure_recall_accuracy(512, 10, trials=10, seed_or_rng=3)
        assert a == b

"""Tests for rematerializable item memories (core/keyed_noise.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RematerializingItemMemory, replay_generator

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def make_regen(seed, n=64):
    def regen():
        return np.random.default_rng(seed).integers(
            -1, 2, size=n).astype(np.int8)
    return regen


class TestPolicies:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds, policy=st.sampled_from(
        RematerializingItemMemory.POLICIES))
    def test_every_policy_bitwise_equal_to_regen(self, seed, policy):
        mem = RematerializingItemMemory(make_regen(seed), policy=policy)
        assert np.array_equal(mem.array(), make_regen(seed)())

    def test_remat_policy_holds_no_resident_bytes(self):
        mem = RematerializingItemMemory(make_regen(0), policy="remat")
        assert mem.nbytes == 0
        assert mem.array() is not mem.array()  # fresh each access
        assert mem.remats >= 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            RematerializingItemMemory(make_regen(0), policy="mirror")


class TestRepair:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, rate=st.floats(0.01, 0.3))
    def test_verify_scrub_repairs_any_corruption(self, seed, rate):
        mem = RematerializingItemMemory(make_regen(seed), policy="verify")
        golden = mem.array().copy()
        mem.corrupt(rate, seed_or_rng=seed + 1)
        report = mem.scrub()
        assert mem.verify()
        assert np.array_equal(mem.array(), golden)
        assert report["checked"] == 1

    def test_store_policy_has_no_detection_contract(self):
        mem = RematerializingItemMemory(make_regen(3), policy="store")
        corrupted = mem.corrupt(0.5, seed_or_rng=0)
        assert corrupted > 0
        assert mem.scrub()["checked"] == 0  # deliberately blind

    def test_restore_works_under_every_resident_policy(self):
        for policy in ("store", "verify"):
            mem = RematerializingItemMemory(make_regen(4), policy=policy)
            golden = mem.array().copy()
            assert mem.corrupt(0.5, seed_or_rng=1) > 0
            mem.restore()
            assert np.array_equal(mem.array(), golden)

    def test_repair_preserves_aliases(self):
        mem = RematerializingItemMemory(make_regen(5), policy="verify")
        alias = mem.array()
        golden = alias.copy()
        mem.corrupt(0.5, seed_or_rng=2)
        mem.scrub()
        assert np.array_equal(alias, golden)

    def test_on_repair_hook_fires(self):
        fired = []
        mem = RematerializingItemMemory(make_regen(6), policy="verify",
                                        on_repair=fired.append)
        mem.corrupt(0.5, seed_or_rng=3)
        mem.scrub()
        assert len(fired) == 1


class TestFromArray:
    def test_adopted_array_does_not_alias_pristine_copy(self):
        arr = np.arange(32, dtype=np.int8)
        mem = RematerializingItemMemory.from_array(arr, policy="verify")
        mem.corrupt(0.9, seed_or_rng=0)
        mem.scrub()
        assert np.array_equal(mem.array(), np.arange(32, dtype=np.int8))

    def test_source_mutation_after_adoption_is_invisible(self):
        arr = np.arange(32, dtype=np.int8)
        mem = RematerializingItemMemory.from_array(arr, policy="remat")
        arr[:] = 0
        assert np.array_equal(mem.array(), np.arange(32, dtype=np.int8))


class TestReplayGenerator:
    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, skip=st.integers(0, 64))
    def test_replays_a_draw_bitwise_after_generator_advances(self, seed,
                                                             skip):
        live = np.random.default_rng(seed)
        live.integers(0, 2**32, size=skip)  # arbitrary prior history
        state = live.bit_generator.state
        drawn = live.integers(0, 2**32, size=16)
        replayed = replay_generator(state).integers(0, 2**32, size=16)
        assert np.array_equal(drawn, replayed)

"""Tests for the batched packed-domain kernels (core/packed.py).

Every kernel is validated against the dense bipolar computation it
replaces; the hypothesis properties cover awkward dimensionalities (odd
``D``, pad bits) and batch shapes (including empty batches) that fixed
examples tend to miss.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypervector import (
    pack_bits,
    packed_tail_mask,
    packed_words,
    unpack_bits,
)
from repro.core.packed import (
    PackedClassModel,
    TruncatedClassModel,
    packed_bind,
    packed_majority,
    packed_nearest,
    pairwise_hamming,
)
from repro.core.hypervector import random_hypervector

dims = st.integers(min_value=1, max_value=200)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def dense_majority(stack, valid=None):
    """Reference: sign of the bipolar column sum, ties -> +1."""
    stack = np.asarray(stack, dtype=np.int64)
    if valid is not None:
        stack = stack * np.asarray(valid, dtype=np.int64)[..., None]
    total = stack.sum(axis=-2)
    return np.where(total >= 0, 1, -1).astype(np.int8)


class TestPackedBind:
    @pytest.mark.parametrize("dim", [64, 65, 100, 4096])
    def test_matches_dense_product(self, dim):
        a = random_hypervector(dim, 0, shape=(3,))
        b = random_hypervector(dim, 1, shape=(3,))
        bound = packed_bind(pack_bits(a), pack_bits(b), dim)
        assert (unpack_bits(bound, dim) == a * b).all()

    def test_pad_bits_stay_zero(self):
        dim = 67
        a, b = random_hypervector(dim, 0), random_hypervector(dim, 1)
        bound = packed_bind(pack_bits(a), pack_bits(b), dim)
        assert (bound & ~packed_tail_mask(dim) == 0).all()

    def test_broadcasts(self):
        dim = 128
        a = pack_bits(random_hypervector(dim, 0, shape=(4,)))
        b = pack_bits(random_hypervector(dim, 1))
        assert packed_bind(a, b, dim).shape == (4, packed_words(dim))


class TestPackedMajority:
    @pytest.mark.parametrize("dim", [64, 65, 100])
    @pytest.mark.parametrize("n_feat", [1, 2, 5, 8])
    def test_matches_dense_sign_sum(self, dim, n_feat):
        stack = random_hypervector(dim, dim + n_feat, shape=(n_feat,))
        out = packed_majority(pack_bits(stack), dim)
        assert (unpack_bits(out, dim) == dense_majority(stack)).all()

    def test_even_count_ties_resolve_positive(self):
        dim = 64
        stack = np.stack([np.ones((dim,), np.int8), -np.ones((dim,), np.int8)])
        out = packed_majority(pack_bits(stack), dim)
        assert (unpack_bits(out, dim) == 1).all()

    def test_valid_mask_matches_dense(self):
        rng = np.random.default_rng(0)
        dim, n_feat = 100, 7
        stack = random_hypervector(dim, 1, shape=(4, n_feat))
        valid = rng.random((4, n_feat)) < 0.6
        out = packed_majority(pack_bits(stack), dim, valid=valid)
        assert (unpack_bits(out, dim) == dense_majority(stack, valid)).all()

    def test_all_invalid_gives_all_positive(self):
        dim = 70
        stack = random_hypervector(dim, 2, shape=(3,))
        valid = np.zeros(3, dtype=bool)
        out = packed_majority(pack_bits(stack), dim, valid=valid)
        assert (unpack_bits(out, dim) == 1).all()

    def test_zero_features_gives_all_positive(self):
        dim = 65
        empty = np.empty((0, dim), dtype=np.int8)
        out = packed_majority(pack_bits(empty).reshape(0, packed_words(dim)),
                              dim)
        assert (unpack_bits(out, dim) == 1).all()

    def test_empty_batch(self):
        dim = 128
        stack = np.empty((0, 5, packed_words(dim)), dtype=np.uint64)
        assert packed_majority(stack, dim).shape == (0, packed_words(dim))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            packed_majority(np.zeros((3, 2), np.uint64), 64)  # 64 needs 1 word
        with pytest.raises(ValueError):
            packed_majority(np.zeros((3, 1), np.uint64), 64,
                            valid=np.ones(4, bool))

    @settings(max_examples=40, deadline=None)
    @given(dim=dims, n_feat=st.integers(min_value=1, max_value=9), seed=seeds)
    def test_property_odd_dims(self, dim, n_feat, seed):
        stack = random_hypervector(dim, seed, shape=(n_feat,))
        out = packed_majority(pack_bits(stack), dim)
        assert (unpack_bits(out, dim) == dense_majority(stack)).all()
        # pads of the result are always clear
        assert (out & ~packed_tail_mask(dim) == 0).all()


class TestRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(dim=dims, seed=seeds)
    def test_pack_unpack_roundtrip(self, dim, seed):
        hv = random_hypervector(dim, seed, shape=(2,))
        assert (unpack_bits(pack_bits(hv), dim) == hv).all()

    @settings(max_examples=25, deadline=None)
    @given(dim=dims)
    def test_empty_batch_roundtrip(self, dim):
        empty = np.empty((0, dim), dtype=np.int8)
        assert unpack_bits(pack_bits(empty), dim).shape == (0, dim)


class TestHammingSearch:
    def test_pairwise_matches_dense(self):
        dim = 100
        q = random_hypervector(dim, 0, shape=(5,))
        m = random_hypervector(dim, 1, shape=(3,))
        dist = pairwise_hamming(pack_bits(q), pack_bits(m), dim=dim)
        expected = (q[:, None, :] != m[None, :, :]).sum(axis=-1)
        assert dist.shape == (5, 3)
        assert (dist == expected).all()

    def test_nearest_matches_dense_argmin(self):
        dim = 256
        q = random_hypervector(dim, 2, shape=(6,))
        m = random_hypervector(dim, 3, shape=(4,))
        labels, dist = packed_nearest(pack_bits(q), pack_bits(m), dim=dim)
        expected = (q[:, None, :] != m[None, :, :]).sum(axis=-1)
        assert (labels == expected.argmin(axis=1)).all()
        assert (dist == expected).all()

    def test_single_query_promotes(self):
        dim = 64
        q = pack_bits(random_hypervector(dim, 0))
        m = pack_bits(random_hypervector(dim, 1, shape=(2,)))
        labels, dist = packed_nearest(q, m, dim=dim)
        assert dist.shape == (1, 2)


class TestPackedClassModel:
    def _fitted(self, dim=512):
        from repro.learning.hdc_classifier import HDCClassifier
        rng = np.random.default_rng(0)
        protos = random_hypervector(dim, rng, shape=(3,)).astype(np.float64)
        y = np.arange(42) % 3
        x = protos[y] + rng.normal(0, 0.5, (42, dim))
        clf = HDCClassifier(n_classes=3, epochs=2, seed_or_rng=0)
        clf.fit(x, y)
        return clf

    def test_matches_binary_engine(self):
        from repro.learning.binary_inference import BinaryHDCEngine
        clf = self._fitted()
        dim = clf.class_hvs_.shape[1]
        model = PackedClassModel.from_classifier(clf)
        engine = BinaryHDCEngine(clf)
        q = random_hypervector(dim, 9, shape=(8,))
        packed_q = pack_bits(q)
        assert (model.distances(packed_q) == engine.distances(q)).all()
        assert (model.predict(packed_q) == engine.predict(q)).all()

    def test_similarities_are_normalized_dot(self):
        clf = self._fitted(dim=256)
        model = PackedClassModel.from_classifier(clf)
        q = random_hypervector(256, 4, shape=(3,))
        sims = model.similarities(pack_bits(q))
        signs = np.sign(clf.class_hvs_)
        signs[signs == 0] = 1
        expected = q.astype(np.float64) @ signs.T / 256.0
        assert np.allclose(sims, expected)

    def test_unfitted_raises(self):
        from repro.learning.hdc_classifier import HDCClassifier
        with pytest.raises(RuntimeError):
            PackedClassModel.from_classifier(
                HDCClassifier(n_classes=2, seed_or_rng=0))

    def test_nbytes_is_packed_footprint(self):
        model = PackedClassModel(random_hypervector(4096, 0, shape=(2,)))
        assert model.nbytes == 2 * (4096 // 64) * 8

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            PackedClassModel(np.ones(64, np.int8))


class TestCorruptedModel:
    def test_original_left_intact(self):
        model = PackedClassModel(random_hypervector(1024, 0, shape=(2,)))
        before = model.packed.copy()
        bad = model.corrupted(0.3, seed_or_rng=0)
        assert (model.packed == before).all()
        assert (bad.packed != before).any()
        assert bad.n_classes == model.n_classes and bad.dim == model.dim

    def test_pad_bits_never_corrupted(self):
        dim = 70
        model = PackedClassModel(random_hypervector(dim, 0, shape=(3,)))
        bad = model.corrupted(1.0, seed_or_rng=0)
        assert (bad.packed & ~packed_tail_mask(dim) == 0).all()

    def test_similarity_degrades_with_rate(self):
        model = PackedClassModel(random_hypervector(4096, 0, shape=(2,)))
        q = pack_bits(random_hypervector(4096, 1))
        drift = [
            np.abs(model.corrupted(rate, 5).similarities(q)
                   - model.similarities(q)).max()
            for rate in (0.0, 0.05, 0.3)
        ]
        assert drift[0] == 0.0
        assert drift[0] < drift[1] < drift[2]


class TestTruncatedClassModel:
    def _model(self, dim=512, n_classes=3):
        return PackedClassModel(random_hypervector(dim, 0,
                                                   shape=(n_classes,)))

    def test_full_prefix_is_bitwise_identical(self):
        model = self._model()
        view = model.truncated(model.n_words)
        q = pack_bits(random_hypervector(512, 1, shape=(16,)))
        assert (view.distances(q) == model.distances(q)).all()
        assert (view.predict(q) == model.predict(q)).all()
        assert (view.similarities(q) == model.similarities(q)).all()
        assert view.dim == model.dim

    def test_full_prefix_identical_with_pad_bits(self):
        # dim 100 leaves 28 pad bits in the last word: the prefix mask
        # must equal the pad mask, not count the pads
        model = self._model(dim=100)
        view = model.truncated(model.n_words)
        q = pack_bits(random_hypervector(100, 1, shape=(8,)))
        assert (view.distances(q) == model.distances(q)).all()
        assert view.dim == 100

    def test_effective_dim_and_footprint_shrink(self):
        model = self._model(dim=512)
        view = model.truncated(2)
        assert view.dim == 128
        assert view.nbytes == model.nbytes // 4
        assert view.words == 2 and view.n_classes == model.n_classes

    def test_last_word_prefix_caps_dim_at_model_dim(self):
        model = self._model(dim=100)  # 2 words, 100 real bits
        assert model.truncated(2).dim == 100
        assert model.truncated(1).dim == 64

    def test_prefix_distance_matches_manual_slice(self):
        model = self._model(dim=512)
        words = 3
        view = model.truncated(words)
        q = pack_bits(random_hypervector(512, 2, shape=(5,)))
        manual = pairwise_hamming(q[:, :words], model.packed[:, :words],
                                  dim=64 * words)
        assert (view.distances(q) == manual).all()

    def test_accepts_already_truncated_queries(self):
        model = self._model()
        view = model.truncated(4)
        q = pack_bits(random_hypervector(512, 3, shape=(4,)))
        assert (view.distances(q[:, :4]) == view.distances(q)).all()

    def test_similarities_normalized_by_effective_dim(self):
        model = self._model()
        view = model.truncated(4)
        q = pack_bits(random_hypervector(512, 5, shape=(6,)))
        sims = view.similarities(q)
        assert (np.abs(sims) <= 1.0).all()
        assert np.allclose(sims,
                           1.0 - 2.0 * view.distances(q) / float(view.dim))

    def test_word_bounds_validated(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.truncated(0)
        with pytest.raises(ValueError):
            model.truncated(model.n_words + 1)

    def test_wraps_raw_model_arrays(self):
        raw = random_hypervector(256, 0, shape=(2,))
        view = TruncatedClassModel(raw, 2)
        ref = PackedClassModel(raw).truncated(2)
        q = pack_bits(random_hypervector(256, 1, shape=(3,)))
        assert (view.distances(q) == ref.distances(q)).all()


class TestPrefixMonotonicity:
    """Prefix scores converge to the full-model scores as words grow.

    The deterministic envelope: a word-prefix of ``n`` of ``D`` components
    can move each class similarity by at most the mass of the unseen
    suffix, so ``|sim_prefix - sim_full| <= 2 (D - n) / D`` at every
    width - the concentration argument behind the cascade's early exit,
    with the probabilistic bound replaced by its worst case.
    """

    @given(seed=seeds, dim=st.integers(min_value=65, max_value=600))
    @settings(max_examples=25, deadline=None)
    def test_prefix_similarity_within_suffix_envelope(self, seed, dim):
        model = PackedClassModel(random_hypervector(dim, seed, shape=(3,)))
        q = pack_bits(random_hypervector(dim, seed + 1, shape=(4,)))
        full = model.similarities(q)
        for words in range(1, model.n_words + 1):
            view = model.truncated(words)
            n = view.dim
            envelope = 2.0 * (dim - n) / dim + 1e-12
            # prefix sim is over n of D components; compare on the full-D
            # scale (sim = 1 - 2 d / D after rescaling by n / D)
            prefix_full_scale = 1.0 - 2.0 * view.distances(q) / dim
            suffix_gap = np.abs(prefix_full_scale - full)
            assert (suffix_gap <= envelope).all()

    @given(seed=seeds, dim=st.integers(min_value=65, max_value=600))
    @settings(max_examples=25, deadline=None)
    def test_gap_shrinks_to_zero_at_full_width(self, seed, dim):
        model = PackedClassModel(random_hypervector(dim, seed, shape=(2,)))
        q = pack_bits(random_hypervector(dim, seed + 2, shape=(3,)))
        full = model.similarities(q)
        worst = [
            np.abs(1.0 - 2.0 * model.truncated(w).distances(q) / dim
                   - full).max()
            for w in range(1, model.n_words + 1)
        ]
        # the deterministic envelope shrinks with the unseen suffix, so
        # the worst observed gap at each width must fit under it, and the
        # final width is exact
        assert worst[-1] == 0.0
        for w, g in zip(range(1, model.n_words + 1), worst):
            n = model.truncated(w).dim
            assert g <= 2.0 * (dim - n) / dim + 1e-12

    def test_prediction_stabilizes_once_margin_clears_envelope(self):
        dim = 4096
        model = PackedClassModel(random_hypervector(dim, 0, shape=(2,)))
        q = model.packed[:1].copy()  # the face prototype itself
        full_margin = 2.0  # sim 1 vs sim ~0
        for words in range(1, model.n_words + 1):
            n = model.truncated(words).dim
            if full_margin > 4.0 * (dim - n) / dim:
                # margin exceeds twice the per-class envelope: no wider
                # prefix can flip the argmin
                assert model.truncated(words).predict(q)[0] == 0


class TestBlockDim:
    def test_interior_blocks_are_word_sized(self):
        from repro.core.packed import block_dim
        assert block_dim(4096, 0, 4) == 256
        assert block_dim(4096, 4, 16) == 768

    def test_tail_block_counts_real_bits_only(self):
        from repro.core.packed import block_dim
        assert block_dim(100, 1, 2) == 36
        assert block_dim(100, 0, 2) == 100

    def test_bounds_validated(self):
        from repro.core.packed import block_dim
        for w0, w1 in [(-1, 2), (2, 2), (3, 1), (0, 99)]:
            with pytest.raises(ValueError):
                block_dim(128, w0, w1)


class TestDistanceBlock:
    @given(seed=seeds, dim=st.integers(min_value=65, max_value=400))
    @settings(max_examples=25, deadline=None)
    def test_partition_sums_to_full_distance(self, seed, dim):
        model = PackedClassModel(random_hypervector(dim, seed, shape=(3,)))
        q = pack_bits(random_hypervector(dim, seed + 3, shape=(5,)))
        full = model.distances(q)
        rng = np.random.default_rng(seed)
        w = model.n_words
        cuts = sorted({0, w, *rng.integers(1, max(2, w), size=2).tolist()})
        acc = sum(model.distance_block(q, a, b)
                  for a, b in zip(cuts, cuts[1:]))
        assert (acc == full).all()

    def test_accepts_pre_sliced_queries(self):
        model = PackedClassModel(random_hypervector(512, 0, shape=(2,)))
        q = pack_bits(random_hypervector(512, 1, shape=(4,)))
        whole = model.distance_block(q, 2, 5)
        sliced = model.distance_block(q[:, 2:5], 2, 5)
        assert (whole == sliced).all()

    def test_single_word_prefix_matches_truncated(self):
        model = PackedClassModel(random_hypervector(256, 0, shape=(2,)))
        q = pack_bits(random_hypervector(256, 1, shape=(4,)))
        assert (model.distance_block(q, 0, 1)
                == model.truncated(1).distances(q)).all()

"""Tests for the classic (original-space) HOG descriptor."""

import numpy as np
import pytest

from repro.features.hog import HOGDescriptor


@pytest.fixture
def hog():
    return HOGDescriptor(cell_size=8, n_bins=8)


class TestConstruction:
    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            HOGDescriptor(n_bins=0)

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            HOGDescriptor(block_size=-1)

    def test_feature_length_no_blocks(self, hog):
        assert hog.feature_length((16, 16)) == 2 * 2 * 8

    def test_feature_length_with_blocks(self):
        hog = HOGDescriptor(cell_size=8, n_bins=8, block_size=2)
        # 4x4 cells -> 3x3 blocks of 2x2 cells
        assert hog.feature_length((32, 32)) == 9 * 4 * 8

    def test_feature_length_block_too_big(self):
        hog = HOGDescriptor(cell_size=8, block_size=3)
        with pytest.raises(ValueError):
            hog.feature_length((16, 16))


class TestHistograms:
    def test_constant_image_zero_histogram(self, hog):
        hist = hog.cell_histograms(np.full((16, 16), 0.7))
        assert np.allclose(hist, 0.0)

    def test_histogram_shape(self, hog):
        assert hog.cell_histograms(np.zeros((24, 16))).shape == (3, 2, 8)

    def test_vertical_edge_votes_one_direction(self, hog):
        img = np.zeros((16, 16))
        img[:, 8:] = 1.0
        hist = hog.cell_histograms(img)
        winning = hist.sum(axis=(0, 1)).argmax()
        # gradient points along +y (columns) -> angle pi/2 -> bin 2 of 8
        assert winning == 2

    def test_histogram_nonnegative(self, hog, disc_image):
        assert (hog.cell_histograms(disc_image) >= 0).all()

    def test_scaling_by_cell_area(self):
        # doubling cell area halves nothing: histogram is mean-normalized,
        # so a uniform edge density gives comparable values at both sizes
        img = np.tile([0.0, 1.0], (16, 8))
        h1 = HOGDescriptor(cell_size=8, n_bins=8).cell_histograms(img)
        h2 = HOGDescriptor(cell_size=16, n_bins=8).cell_histograms(img)
        assert h1.sum() == pytest.approx(4 * h2.sum(), rel=0.2)


class TestCellFeatures:
    def test_gamma_false_equals_histogram(self, disc_image):
        hog = HOGDescriptor(cell_size=8, n_bins=8, gamma=False)
        feats = hog.cell_features(disc_image)
        hist = hog.cell_histograms(disc_image)
        assert np.allclose(feats, hist)

    def test_gamma_compresses_upward(self, disc_image):
        plain = HOGDescriptor(cell_size=8, gamma=False).cell_features(disc_image)
        gamma = HOGDescriptor(cell_size=8, gamma=True).cell_features(disc_image)
        # sqrt compression boosts sub-1 values
        assert gamma.sum() > plain.sum()

    def test_extract_flattens(self, hog, disc_image):
        feats = hog.extract(disc_image)
        assert feats.shape == (hog.feature_length(disc_image.shape),)

    def test_extract_batch(self, hog):
        imgs = np.random.default_rng(0).random((3, 16, 16))
        feats = hog.extract_batch(imgs)
        assert feats.shape == (3, hog.feature_length((16, 16)))

    def test_extract_batch_requires_3d(self, hog):
        with pytest.raises(ValueError):
            hog.extract_batch(np.zeros((16, 16)))

    def test_deterministic(self, hog, disc_image):
        assert (hog.extract(disc_image) == hog.extract(disc_image)).all()


class TestBlockNormalization:
    def test_normalized_blocks_unit_scale(self, disc_image):
        hog = HOGDescriptor(cell_size=8, n_bins=8, block_size=2)
        img = np.random.default_rng(0).random((32, 32))
        feats = hog.extract(img)
        blocks = feats.reshape(-1, 4 * 8)
        norms = np.linalg.norm(blocks, axis=1)
        assert (norms <= 1.0 + 1e-9).all()
        assert norms.max() > 0.5

    def test_block_norm_illumination_invariance(self):
        hog = HOGDescriptor(cell_size=8, n_bins=8, block_size=2, gamma=False)
        img = np.random.default_rng(1).random((32, 32))
        bright = np.clip(img * 0.5, 0, 1)
        a = hog.extract(img * 0.9)
        b = hog.extract(bright * 0.9)
        # same structure at half contrast -> nearly identical after norm
        cos = a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
        assert cos > 0.98


class TestInjector:
    def test_injector_sees_all_stages(self, hog, disc_image):
        stages = []

        def injector(arr, stage):
            stages.append(stage)
            return arr

        hog.extract_with_injector(disc_image, injector)
        assert stages == ["pixels", "gx", "gy", "magnitude", "histogram", "features"]

    def test_identity_injector_no_change(self, hog, disc_image):
        out = hog.extract_with_injector(disc_image, lambda a, s: a)
        assert np.allclose(out, hog.extract(disc_image))

    def test_injector_can_corrupt(self, hog, disc_image):
        def zero_gradients(arr, stage):
            return np.zeros_like(arr) if stage in ("gx", "gy") else arr

        out = hog.extract_with_injector(disc_image, zero_gradients)
        assert np.allclose(out, 0.0)

"""Tests for the Local Binary Pattern descriptor."""

import numpy as np
import pytest

from repro.features.lbp import LBPDescriptor, lbp_codes, uniform_mapping


class TestLBPCodes:
    def test_constant_image_all_ones_code(self):
        # neighbours >= center everywhere -> all 8 bits set
        codes = lbp_codes(np.full((5, 5), 0.5))
        assert (codes == 255).all()

    def test_bright_center_zero_code(self):
        img = np.zeros((3, 3))
        img[1, 1] = 1.0
        assert lbp_codes(img)[1, 1] == 0

    def test_codes_are_uint8(self):
        codes = lbp_codes(np.random.default_rng(0).random((6, 6)))
        assert codes.dtype == np.uint8

    def test_monotone_illumination_invariance(self):
        rng = np.random.default_rng(1)
        img = rng.random((8, 8))
        # LBP depends only on local ordering -> invariant to gain/offset
        assert (lbp_codes(img) == lbp_codes(img * 0.5 + 0.2)).all()

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            lbp_codes(np.zeros(9))


class TestUniformMapping:
    def test_58_uniform_patterns(self):
        mapping = uniform_mapping()
        assert (mapping < 58).sum() == 58

    def test_all_zero_and_all_one_are_uniform(self):
        mapping = uniform_mapping()
        assert mapping[0] != 58
        assert mapping[255] != 58

    def test_alternating_pattern_not_uniform(self):
        mapping = uniform_mapping()
        assert mapping[0b01010101] == 58

    def test_mapping_shape(self):
        assert uniform_mapping().shape == (256,)


class TestLBPDescriptor:
    def test_uniform_length(self):
        desc = LBPDescriptor(cell_size=8, uniform=True)
        assert desc.feature_length((16, 16)) == 4 * 59

    def test_raw_length(self):
        desc = LBPDescriptor(cell_size=8, uniform=False)
        assert desc.feature_length((16, 16)) == 4 * 256

    def test_histograms_normalized(self):
        desc = LBPDescriptor(cell_size=8)
        feats = desc.extract(np.random.default_rng(0).random((16, 16)))
        # each cell histogram sums to 1 (every pixel votes once)
        per_cell = feats.reshape(4, 59).sum(axis=1)
        assert np.allclose(per_cell, 1.0)

    def test_extract_batch(self):
        desc = LBPDescriptor(cell_size=8)
        out = desc.extract_batch(np.zeros((3, 16, 16)))
        assert out.shape == (3, desc.feature_length((16, 16)))

    def test_discriminates_textures(self):
        desc = LBPDescriptor(cell_size=8)
        yy, xx = np.mgrid[0:16, 0:16]
        stripes = (xx % 4 < 2).astype(float)
        checker = (((xx // 2) + (yy // 2)) % 2).astype(float)
        a, b = desc.extract(stripes), desc.extract(checker)
        cos = a @ b / (np.linalg.norm(a) * np.linalg.norm(b))
        assert cos < 0.9

    def test_faces_vs_clutter_learnable(self, face_data):
        xtr, ytr, _, _ = face_data
        desc = LBPDescriptor(cell_size=8)
        feats = desc.extract_batch(xtr)
        from repro.learning import LinearSVM
        svm = LinearSVM(feats.shape[1], 2, epochs=15, seed_or_rng=0).fit(feats, ytr)
        assert svm.score(feats, ytr) > 0.8

"""Tests for the shared gradient utilities."""

import numpy as np
import pytest

from repro.features.gradients import (
    cell_grid,
    central_gradients,
    gradient_magnitude,
    orientation_bins,
)


class TestCentralGradients:
    def test_constant_image_zero_gradient(self):
        gx, gy = central_gradients(np.full((8, 8), 0.5))
        assert np.allclose(gx, 0) and np.allclose(gy, 0)

    def test_vertical_ramp(self):
        # image increasing down the rows -> Gx = slope/... halved diff
        img = np.tile(np.arange(8, dtype=float)[:, None], (1, 8)) / 10
        gx, gy = central_gradients(img)
        assert np.allclose(gx[1:-1], 0.1)  # (0.2 difference)/2
        assert np.allclose(gy, 0.0)

    def test_horizontal_ramp(self):
        img = np.tile(np.arange(8, dtype=float)[None, :], (8, 1)) / 10
        gx, gy = central_gradients(img)
        assert np.allclose(gy[:, 1:-1], 0.1)
        assert np.allclose(gx, 0.0)

    def test_border_replication_halves_edge_gradient(self):
        img = np.tile(np.arange(4, dtype=float)[:, None], (1, 4))
        gx, _ = central_gradients(img)
        # first row: (img[1] - img[0]) / 2 with replicate padding
        assert np.allclose(gx[0], 0.5)

    def test_output_shapes(self):
        gx, gy = central_gradients(np.zeros((5, 7)))
        assert gx.shape == (5, 7) and gy.shape == (5, 7)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            central_gradients(np.zeros((3, 3, 3)))


class TestGradientMagnitude:
    def test_l2(self):
        assert gradient_magnitude(3.0, 4.0, "l2") == pytest.approx(5.0)

    def test_l2_scaled_is_l2_over_sqrt2(self):
        assert gradient_magnitude(1.0, 1.0, "l2_scaled") == pytest.approx(1.0)
        assert gradient_magnitude(3.0, 4.0, "l2_scaled") == pytest.approx(5 / np.sqrt(2))

    def test_l1(self):
        assert gradient_magnitude(-3.0, 4.0, "l1") == pytest.approx(7.0)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            gradient_magnitude(1.0, 1.0, "l3")

    def test_array_input(self):
        gx = np.array([1.0, 0.0])
        gy = np.array([0.0, 2.0])
        assert gradient_magnitude(gx, gy, "l2").tolist() == [1.0, 2.0]


class TestOrientationBins:
    def test_signed_cardinal_directions(self):
        gx = np.array([1.0, 0.0, -1.0, 0.0])
        gy = np.array([0.0, 1.0, 0.0, -1.0])
        bins = orientation_bins(gx, gy, 8, signed=True)
        # angles 0, pi/2, pi, 3pi/2 -> bins 0, 2, 4, 6 (sector width pi/4)
        assert bins.tolist() == [0, 2, 4, 6]

    def test_signed_diagonals(self):
        bins = orientation_bins(np.array([1.0]), np.array([1.0]), 8, signed=True)
        assert bins[0] == 1  # 45 degrees -> second sector

    def test_unsigned_folds_opposites(self):
        a = orientation_bins(np.array([1.0]), np.array([0.5]), 9, signed=False)
        b = orientation_bins(np.array([-1.0]), np.array([-0.5]), 9, signed=False)
        assert a[0] == b[0]

    def test_bins_in_range(self):
        rng = np.random.default_rng(0)
        bins = orientation_bins(rng.normal(size=100), rng.normal(size=100), 8)
        assert bins.min() >= 0 and bins.max() < 8


class TestCellGrid:
    def test_exact_division(self):
        assert cell_grid((16, 24), 8) == (2, 3)

    def test_truncates_partial_cells(self):
        assert cell_grid((17, 23), 8) == (2, 2)

    def test_too_small_raises(self):
        with pytest.raises(ValueError, match="smaller than one"):
            cell_grid((4, 16), 8)

    def test_bad_cell_size_raises(self):
        with pytest.raises(ValueError):
            cell_grid((16, 16), 0)

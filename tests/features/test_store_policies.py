"""Store-policy equivalence for rematerializable item memories.

The ``store | verify | remat`` policies of the HDHOG extractor's item
memories are purely a memory/compute trade: every policy must produce
bitwise-identical features, classifier models, and detection scores, on
both backends.
"""

import numpy as np
import pytest

from repro.datasets import make_face_dataset
from repro.features.hog_hd import HDHOGExtractor
from repro.pipeline.detector import SlidingWindowDetector, make_scene
from repro.pipeline.hdface import HDFacePipeline

POLICIES = ("store", "verify", "remat")


@pytest.fixture(scope="module")
def images():
    xtr, _ = make_face_dataset(6, size=24, seed_or_rng=0)
    return xtr


class TestExtractorEquivalence:
    @pytest.mark.parametrize("policy", POLICIES[1:])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_features_bitwise_equal_to_store(self, images, policy, seed):
        kwargs = dict(dim=256, cell_size=8, magnitude="l1")
        ref = HDHOGExtractor(seed_or_rng=seed, store_policy="store",
                             **kwargs).extract_batch(images)
        got = HDHOGExtractor(seed_or_rng=seed, store_policy=policy,
                             **kwargs).extract_batch(images)
        assert np.array_equal(got, ref)

    def test_remat_keeps_only_the_basis_resident(self, images):
        stored = HDHOGExtractor(dim=256, seed_or_rng=0,
                                store_policy="store")
        remat = HDHOGExtractor(dim=256, seed_or_rng=0, store_policy="remat")
        stored_bytes = sum(m.nbytes
                           for m in stored.item_memories().values())
        memories = remat.item_memories()
        # the codec basis must stay resident (live aliases bind against
        # it), so it is clamped to "verify"; everything else drops to 0
        assert memories["basis"].nbytes > 0
        others = sum(m.nbytes for k, m in memories.items() if k != "basis")
        assert others == 0
        assert stored_bytes > memories["basis"].nbytes

    def test_verify_policy_self_heals_between_extractions(self, images):
        # the codec's rng is stateful, so equivalent extractors must be
        # compared draw-for-draw: both do one warm-up extraction, then
        # one is corrupted and scrubbed before the measured extraction
        kwargs = dict(dim=256, cell_size=8, magnitude="l1",
                      store_policy="verify")
        healed = HDHOGExtractor(seed_or_rng=1, **kwargs)
        twin = HDHOGExtractor(seed_or_rng=1, **kwargs)
        assert np.array_equal(healed.extract_batch(images),
                              twin.extract_batch(images))
        corrupted = 0
        for memory in healed.item_memories().values():
            corrupted += memory.corrupt(0.1, seed_or_rng=2)
            memory.scrub()
        assert corrupted > 0
        assert np.array_equal(healed.extract_batch(images),
                              twin.extract_batch(images))


@pytest.mark.parametrize("backend", ["dense", "packed"])
class TestDetectionEquivalence:
    def test_scores_bitwise_equal_across_policies(self, backend):
        xtr, ytr = make_face_dataset(16, size=24, seed_or_rng=0)
        scene, _ = make_scene(48, [(8, 16)], window=24, seed_or_rng=3)
        scores = {}
        for policy in POLICIES:
            pipe = HDFacePipeline(2, dim=256, cell_size=8, magnitude="l1",
                                  epochs=3, seed_or_rng=0,
                                  store_policy=policy).fit(xtr, ytr)
            det = SlidingWindowDetector(pipe, window=24, stride=8,
                                        backend=backend)
            scores[policy] = det.scan(scene).scores
        assert np.array_equal(scores["verify"], scores["store"])
        assert np.array_equal(scores["remat"], scores["store"])

"""Tests for HAAR-like rectangle features."""

import numpy as np
import pytest

from repro.features.haar import HaarExtractor, HaarFeature, integral_image


class TestIntegralImage:
    def test_total_sum_in_corner(self):
        img = np.arange(12, dtype=float).reshape(3, 4)
        ii = integral_image(img)
        assert ii[-1, -1] == img.sum()

    def test_zero_border(self):
        ii = integral_image(np.ones((3, 3)))
        assert (ii[0] == 0).all() and (ii[:, 0] == 0).all()

    def test_rectangle_sums(self):
        rng = np.random.default_rng(0)
        img = rng.random((8, 8))
        ii = integral_image(img)
        # arbitrary interior rectangle
        y, x, h, w = 2, 3, 4, 2
        expected = img[y : y + h, x : x + w].sum()
        got = ii[y + h, x + w] - ii[y, x + w] - ii[y + h, x] + ii[y, x]
        assert got == pytest.approx(expected)

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            integral_image(np.zeros(5))


class TestHaarFeature:
    def test_edge_h_detects_vertical_edge(self):
        img = np.zeros((8, 8))
        img[:, 4:] = 1.0
        ii = integral_image(img)
        feat = HaarFeature("edge_h", 0, 0, 8, 8)
        # left half dark, right half bright -> strongly negative
        assert feat.evaluate(ii) < -0.2

    def test_edge_v_detects_horizontal_edge(self):
        img = np.zeros((8, 8))
        img[4:, :] = 1.0
        ii = integral_image(img)
        feat = HaarFeature("edge_v", 0, 0, 8, 8)
        assert feat.evaluate(ii) < -0.2

    def test_line_h_detects_bright_stripe(self):
        img = np.zeros((6, 9))
        img[:, 3:6] = 1.0
        ii = integral_image(img)
        feat = HaarFeature("line_h", 0, 0, 6, 9)
        assert feat.evaluate(ii) > 0.2

    def test_quad_checkerboard(self):
        img = np.zeros((8, 8))
        img[:4, :4] = 1.0
        img[4:, 4:] = 1.0
        ii = integral_image(img)
        feat = HaarFeature("quad", 0, 0, 8, 8)
        assert feat.evaluate(ii) > 0.4

    def test_uniform_image_zero_response(self):
        ii = integral_image(np.full((8, 8), 0.6))
        for kind in ("edge_h", "edge_v", "quad"):
            assert HaarFeature(kind, 0, 0, 8, 8).evaluate(ii) == pytest.approx(0.0)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            HaarFeature("blob", 0, 0, 4, 4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            HaarFeature("quad", 0, 0, 0, 4)


class TestHaarExtractor:
    def test_bank_size(self):
        ext = HaarExtractor(window=24, n_features=50, seed_or_rng=0)
        assert ext.n_features == 50

    def test_deterministic_bank(self):
        a = HaarExtractor(24, n_features=20, seed_or_rng=3)
        b = HaarExtractor(24, n_features=20, seed_or_rng=3)
        assert a.features == b.features

    def test_features_fit_window(self):
        ext = HaarExtractor(16, n_features=100, seed_or_rng=0)
        for f in ext.features:
            assert 0 <= f.y and f.y + f.h <= 16
            assert 0 <= f.x and f.x + f.w <= 16

    def test_extract_shape(self):
        ext = HaarExtractor(16, n_features=30, seed_or_rng=0)
        assert ext.extract(np.zeros((16, 16))).shape == (30,)

    def test_extract_wrong_size_raises(self):
        ext = HaarExtractor(16, n_features=5, seed_or_rng=0)
        with pytest.raises(ValueError):
            ext.extract(np.zeros((24, 24)))

    def test_extract_batch(self):
        ext = HaarExtractor(16, n_features=10, seed_or_rng=0)
        out = ext.extract_batch(np.zeros((4, 16, 16)))
        assert out.shape == (4, 10)

    def test_window_too_small_raises(self):
        with pytest.raises(ValueError):
            HaarExtractor(2, min_size=4)

    def test_features_separate_faces_from_clutter(self, face_data):
        xtr, ytr, _, _ = face_data
        ext = HaarExtractor(24, n_features=150, seed_or_rng=0)
        feats = ext.extract_batch(xtr)
        from repro.learning import LinearSVM
        svm = LinearSVM(feats.shape[1], 2, epochs=15, seed_or_rng=0).fit(feats, ytr)
        assert svm.score(feats, ytr) > 0.8

"""Tests for convolutional feature extraction in hyperspace."""

import numpy as np
import pytest
from scipy.ndimage import convolve as nd_convolve

from repro.features.conv_hd import DEFAULT_FILTERS, HDConvExtractor


@pytest.fixture(scope="module")
def ext():
    return HDConvExtractor(dim=4096, pool_size=4, gamma=False, seed_or_rng=0)


class TestConstruction:
    def test_empty_bank_raises(self):
        with pytest.raises(ValueError):
            HDConvExtractor(dim=256, filters={})

    def test_zero_kernel_raises(self):
        with pytest.raises(ValueError):
            HDConvExtractor(dim=256, filters={"z": np.zeros((3, 3))})

    def test_bad_pool_raises(self):
        with pytest.raises(ValueError):
            HDConvExtractor(dim=256, pool_size=0)

    def test_default_bank(self, ext):
        assert set(ext.filters) == set(DEFAULT_FILTERS)


class TestConvolve:
    def test_output_shape_valid_mode(self, ext):
        pix = ext.encode_pixels(np.zeros((10, 12)))
        resp = ext.convolve(pix, DEFAULT_FILTERS["sobel_x"])
        assert resp.shape == (8, 10, 4096)

    def test_image_smaller_than_kernel(self, ext):
        pix = ext.encode_pixels(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            ext.convolve(pix, DEFAULT_FILTERS["sobel_x"])

    def test_sobel_on_edge_matches_reference(self, ext):
        """Decoded hyperspace Sobel tracks the float Sobel up to 1/sum|w|."""
        yy, xx = np.mgrid[0:12, 0:12]
        img = (xx >= 6).astype(float)
        pix = ext.encode_pixels(img)
        kernel = DEFAULT_FILTERS["sobel_y"]
        resp = ext.codec.decode(ext.convolve(pix, kernel))
        ref = nd_convolve(img, kernel[::-1, ::-1], mode="constant")[1:-1, 1:-1]
        ref = ref / np.abs(kernel).sum()
        assert np.abs(resp - ref).mean() < 0.05
        assert np.corrcoef(resp.ravel(), ref.ravel())[0, 1] > 0.9

    def test_flat_image_zero_response(self, ext):
        pix = ext.encode_pixels(np.full((8, 8), 0.5))
        resp = ext.codec.decode(ext.convolve(pix, DEFAULT_FILTERS["sobel_x"]))
        assert np.abs(resp).max() < 0.08


class TestPooling:
    def test_pool_shape(self, ext):
        pix = ext.encode_pixels(np.zeros((18, 18)))
        resp = ext.convolve(pix, DEFAULT_FILTERS["laplacian"])  # 16x16
        pooled = ext.pool(resp)
        assert pooled.shape == (4, 4, 4096)

    def test_pool_too_small_raises(self):
        small = HDConvExtractor(dim=256, pool_size=32, seed_or_rng=0)
        pix = small.encode_pixels(np.zeros((10, 10)))
        resp = small.convolve(pix, DEFAULT_FILTERS["sobel_x"])
        with pytest.raises(ValueError):
            small.pool(resp)

    def test_pooled_bundle_decodes_to_mean(self, ext):
        """Bundle decode / pool area ~= mean of member values."""
        img = np.tile(np.linspace(0, 1, 12)[None, :], (12, 1))
        readout = ext.readout(img)
        assert set(readout) == set(DEFAULT_FILTERS)
        # sobel_y on a horizontal ramp: constant positive response
        sy = readout["sobel_y"]
        assert sy.std() < 0.1


class TestQueries:
    def test_query_shape(self, ext):
        assert ext.extract(np.zeros((12, 12))).shape == (4096,)

    def test_batch(self, ext):
        assert ext.extract_batch(np.zeros((2, 12, 12))).shape == (2, 4096)

    def test_supports_learning(self):
        from repro.datasets import make_face_dataset
        from repro.learning import HDCClassifier
        ext = HDConvExtractor(dim=4096, pool_size=6, gamma=True, seed_or_rng=0)
        xtr, ytr = make_face_dataset(60, size=20, seed_or_rng=0)
        xte, yte = make_face_dataset(30, size=20, seed_or_rng=1)
        clf = HDCClassifier(2, epochs=10, seed_or_rng=0)
        clf.fit(ext.extract_batch(xtr), ytr)
        assert clf.score(ext.extract_batch(xte), yte) > 0.65

"""Tests for HAAR feature extraction in hyperspace."""

import numpy as np
import pytest

from repro.features.haar import HaarExtractor
from repro.features.haar_hd import HDHaarExtractor


@pytest.fixture(scope="module")
def ext():
    return HDHaarExtractor(window=16, n_features=40, dim=4096, seed_or_rng=0)


class TestBankSharing:
    def test_same_bank_as_original_space(self, ext):
        ref = HaarExtractor(16, n_features=40, seed_or_rng=0)
        assert ext.features == ref.features

    def test_n_features(self, ext):
        assert ext.n_features == 40


class TestPixelEncoding:
    def test_shape(self, ext):
        assert ext.encode_pixels(np.zeros((16, 16))).shape == (16, 16, 4096)

    def test_wrong_size_raises(self, ext):
        with pytest.raises(ValueError):
            ext.encode_pixels(np.zeros((8, 8)))


class TestFeatureValues:
    def test_uniform_image_zero_responses(self):
        # gamma off: the raw half-differences of a flat image decode to ~0
        # (gamma's sqrt would amplify the noise floor around zero)
        ext = HDHaarExtractor(window=16, n_features=40, dim=4096,
                              gamma=False, seed_or_rng=0)
        vals = ext.readout(np.full((16, 16), 0.6))
        assert np.abs(vals).max() < 0.08

    def test_readout_tracks_original_space(self, ext):
        """Decoded hyperspace responses correlate with the float bank."""
        rng = np.random.default_rng(0)
        yy, xx = np.mgrid[0:16, 0:16]
        img = np.clip((xx >= 8) * 0.8 + rng.random((16, 16)) * 0.1, 0, 1)
        ref = HaarExtractor(16, n_features=40, seed_or_rng=0).extract(img)
        got = ext.readout(img)
        corr = np.corrcoef(ref, got)[0, 1]
        assert corr > 0.7

    def test_edge_feature_sign(self):
        """A known bright-right edge makes edge_h features negative."""
        ext = HDHaarExtractor(window=16, n_features=60, dim=4096, seed_or_rng=1)
        img = np.zeros((16, 16))
        img[:, 8:] = 1.0
        vals = ext.readout(img)
        ref = HaarExtractor(16, n_features=60, seed_or_rng=1).extract(img)
        strong = np.abs(ref) > 0.2
        if strong.any():
            assert (np.sign(vals[strong]) == np.sign(ref[strong])).mean() > 0.8


class TestQueries:
    def test_query_shape(self, ext):
        q = ext.extract(np.zeros((16, 16)))
        assert q.shape == (4096,)

    def test_batch(self, ext):
        qs = ext.extract_batch(np.zeros((3, 16, 16)))
        assert qs.shape == (3, 4096)

    def test_queries_support_learning(self):
        """HD-HAAR front end trains an HDC classifier above chance."""
        from repro.datasets import make_face_dataset
        from repro.learning import HDCClassifier
        xtr, ytr = make_face_dataset(60, size=16, seed_or_rng=0)
        xte, yte = make_face_dataset(30, size=16, seed_or_rng=1)
        ext = HDHaarExtractor(window=16, n_features=120, dim=4096, seed_or_rng=0)
        clf = HDCClassifier(2, epochs=10, seed_or_rng=0)
        clf.fit(ext.extract_batch(xtr), ytr)
        assert clf.score(ext.extract_batch(xte), yte) > 0.65

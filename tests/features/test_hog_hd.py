"""Tests for the hyperspace HOG extractor (paper Sec. 4.3)."""

import numpy as np
import pytest

from repro.features.hog import HOGDescriptor
from repro.features.hog_hd import HDHOGExtractor


@pytest.fixture(scope="module")
def ext():
    """Mid-sized extractor shared by read-only tests."""
    return HDHOGExtractor(dim=2048, cell_size=8, n_bins=8, magnitude="l1",
                          seed_or_rng=0)


class TestConstruction:
    def test_bins_must_divide_by_four(self):
        with pytest.raises(ValueError, match="divisible by 4"):
            HDHOGExtractor(dim=256, n_bins=6)

    def test_unknown_magnitude(self):
        with pytest.raises(ValueError):
            HDHOGExtractor(dim=256, magnitude="l3")

    def test_shared_codec(self):
        from repro.core import StochasticCodec
        codec = StochasticCodec(256, 0)
        ext = HDHOGExtractor(codec=codec, cell_size=4)
        assert ext.dim == 256 and ext.codec is codec


class TestPixelEncoding:
    def test_shape(self, ext):
        hvs = ext.encode_pixels(np.zeros((4, 6)))
        assert hvs.shape == (4, 6, 2048)

    def test_codebook_deterministic(self, ext):
        img = np.full((2, 2), 0.5)
        assert (ext.encode_pixels(img) == ext.encode_pixels(img)).all()

    def test_values_decode_to_intensity(self, ext):
        img = np.array([[0.0, 0.25], [0.75, 1.0]])
        decoded = ext.codec.decode(ext.encode_pixels(img))
        assert np.abs(decoded - img).max() < 0.1

    def test_out_of_range_raises(self, ext):
        with pytest.raises(ValueError):
            ext.encode_pixels(np.full((2, 2), 1.5))

    def test_non_2d_raises(self, ext):
        with pytest.raises(ValueError):
            ext.encode_pixels(np.zeros((2, 2, 2)))


class TestGradients:
    def test_gradient_values(self, ext):
        # vertical ramp with 0.1/row slope: the halved central difference
        # over two rows represents (0.2)/2 = 0.1 in the interior, Gy = 0
        img = np.tile(np.linspace(0.1, 0.9, 9)[:, None], (1, 9))
        v_gx, v_gy = ext.gradients(ext.encode_pixels(img))
        gx = ext.codec.decode(v_gx)
        gy = ext.codec.decode(v_gy)
        assert np.abs(gx[1:-1] - 0.1).max() < 0.09
        assert np.abs(gy).max() < 0.12

    def test_gradient_shapes(self, ext):
        v_gx, v_gy = ext.gradients(ext.encode_pixels(np.zeros((5, 7))))
        assert v_gx.shape == (5, 7, 2048)
        assert v_gy.shape == (5, 7, 2048)


class TestAngleBins:
    @pytest.mark.parametrize("direction,expected", [
        ((0.3, 0.05), 0),   # ~0 deg
        ((0.3, 0.3), 1),    # 45 deg boundary region -> bin 0 or 1
        ((0.05, 0.3), 1),   # ~90 deg -> bin 1 (second half of Q1 fold)
    ])
    def test_quadrant_one(self, ext, direction, expected):
        gx, gy = direction
        v_gx = ext.codec.construct(np.full((32,), gx))
        v_gy = ext.codec.construct(np.full((32,), gy))
        bins, _, _ = ext.angle_bins(v_gx, v_gy)
        # majority vote across 32 independent replicas
        vote = np.bincount(bins, minlength=8).argmax()
        assert abs(vote - expected) <= 1

    def test_opposite_gradient_opposite_half(self, ext):
        v_gx = ext.codec.construct(np.full((32,), -0.3))
        v_gy = ext.codec.construct(np.full((32,), -0.1))
        bins, signs_x, signs_y = ext.angle_bins(v_gx, v_gy)
        assert (np.bincount(bins, minlength=8)[4:6].sum()) > 16
        assert (signs_x < 0).mean() > 0.9
        assert (signs_y < 0).mean() > 0.9

    def test_agreement_with_classic_bins(self, ext, disc_image):
        from repro.features.gradients import central_gradients, orientation_bins
        gx, gy = central_gradients(disc_image)
        classic = orientation_bins(gx, gy, 8, signed=True)
        pix = ext.encode_pixels(disc_image)
        v_gx, v_gy = ext.gradients(pix)
        hd_bins, _, _ = ext.angle_bins(v_gx, v_gy)
        strong = np.hypot(gx, gy) > 0.1  # weak gradients are noise-dominated
        agreement = (hd_bins[strong] == classic[strong]).mean()
        assert agreement > 0.6


class TestHistogramAndQuery:
    def test_readout_matches_classic(self, ext, disc_image):
        classic = HOGDescriptor(cell_size=8, n_bins=8, magnitude="l1",
                                gamma=True).cell_features(disc_image)
        result = ext.extract_histogram(disc_image)
        decoded = ext.readout_histogram(result)
        corr = np.corrcoef(classic.ravel(), decoded.ravel())[0, 1]
        assert corr > 0.8

    def test_counts_sum_to_cell_pixels(self, ext, disc_image):
        result = ext.extract_histogram(disc_image)
        assert (result.counts.sum(axis=2) == result.cell_pixels).all()

    def test_result_grid(self, ext):
        result = ext.extract_histogram(np.zeros((16, 24)))
        assert result.grid == (2, 3, 8)
        assert result.fractions.max() <= 1.0

    def test_query_shape_and_dtype(self, ext, disc_image):
        q = ext.extract(disc_image)
        assert q.shape == (2048,)
        assert q.dtype == np.float32

    def test_query_similarity_tracks_descriptor_similarity(self, ext):
        rng = np.random.default_rng(3)
        yy, xx = np.mgrid[0:16, 0:16]
        face_like = np.clip(1 - np.hypot(yy - 8, xx - 8) / 8, 0, 1)
        stripes = (xx % 4 < 2).astype(float)
        q_same_a = ext.extract(np.clip(face_like + rng.normal(0, .02, (16,16)), 0, 1))
        q_same_b = ext.extract(np.clip(face_like + rng.normal(0, .02, (16,16)), 0, 1))
        q_diff = ext.extract(np.clip(stripes + rng.normal(0, .02, (16,16)), 0, 1))

        def cos(a, b):
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))

        assert cos(q_same_a, q_same_b) > cos(q_same_a, q_diff)

    def test_extract_batch(self, ext):
        imgs = np.random.default_rng(0).random((3, 16, 16))
        qs = ext.extract_batch(imgs)
        assert qs.shape == (3, 2048)

    def test_extract_batch_requires_3d(self, ext):
        with pytest.raises(ValueError):
            ext.extract_batch(np.zeros((16, 16)))


class TestInjector:
    def test_injector_sees_hypervector_stages(self, ext, disc_image):
        stages = []

        def injector(hv, stage):
            stages.append(stage)
            return hv

        ext.extract_histogram(disc_image, injector)
        assert stages == ["pixels", "gx", "gy", "magnitude", "histogram"]

    def test_moderate_flips_barely_change_readout(self, disc_image):
        from repro.noise import HypervectorFaultInjector
        ext = HDHOGExtractor(dim=4096, cell_size=8, magnitude="l1", seed_or_rng=0)
        clean = ext.readout_histogram(ext.extract_histogram(disc_image))
        injector = HypervectorFaultInjector(0.02, seed_or_rng=0)
        noisy = ext.readout_histogram(ext.extract_histogram(disc_image, injector))
        # holographic robustness: 2% flips shift the decoded features by
        # only a few percent of their range
        assert np.abs(noisy - clean).mean() < 0.05


class TestMagnitudeModes:
    def test_l2_scaled_matches_classic_l2_scaled(self, disc_image):
        ext = HDHOGExtractor(dim=4096, cell_size=8, magnitude="l2_scaled",
                             seed_or_rng=0)
        classic = HOGDescriptor(cell_size=8, magnitude="l2_scaled",
                                gamma=True).cell_features(disc_image)
        decoded = ext.readout_histogram(ext.extract_histogram(disc_image))
        corr = np.corrcoef(classic.ravel(), decoded.ravel())[0, 1]
        assert corr > 0.75

    def test_gamma_off(self, disc_image):
        ext = HDHOGExtractor(dim=2048, cell_size=8, magnitude="l1",
                             gamma=False, seed_or_rng=0)
        classic = HOGDescriptor(cell_size=8, magnitude="l1",
                                gamma=False).cell_features(disc_image)
        decoded = ext.readout_histogram(ext.extract_histogram(disc_image))
        assert np.abs(decoded - classic).mean() < 0.03

"""Bitwise conformance matrix over every frame-scan route.

The repo's central correctness bar: no matter how a frame is scanned -
dense or packed backend, flat or cascade scan, full precision or
frame-delta reuse or a truncated word prefix, solo or through the
cross-stream batcher - the scores must be bitwise what the matching
backend's reference flat solo scan produces, and the faces found must
be identical to the reference flat dense scan's.  (Dense cosine and
packed Hamming margins are sign-compatible on faces but flip on
near-zero background windows, so cross-backend equality is asserted at
the face level, within-backend equality bitwise.)  Every knob
combination is one parametrized case; the planner section then checks that every
:class:`~repro.pipeline.plan.Plan` the
:class:`~repro.runtime.planner.ExecutionPlanner` emits routes through
:func:`~repro.pipeline.multiscale.execute_plan` bitwise-identically on
all three execution paths (serial, threaded, batch gate) and matches a
hand-rolled per-level reference scan with the same knobs.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.pipeline import (CrossStreamBatcher, HDFacePipeline,
                            PyramidDetector, ScanRequest,
                            SlidingWindowDetector, execute_plan, make_scene)
from repro.pipeline.multiscale import pyramid
from repro.pipeline.plan import Plan
from repro.runtime import ExecutionPlanner

pytestmark = pytest.mark.tier1

DIM = 512            # 8 packed words: room for a real truncation cap
WINDOW = 24
STRIDE = 8
TRUNC_WORDS = 4      # half-width prefix; fixture scenes keep detections

BACKENDS = ("dense", "packed")
SCANS = ("flat", "cascade")
PRECISIONS = ("full", "delta", "truncated")
EXECUTIONS = ("solo", "batched")


def route_valid(backend, scan, precision):
    """Cascade and word truncation are packed-backend constructs."""
    return backend == "packed" or (scan == "flat" and precision != "truncated")


MATRIX = [pytest.param(b, s, p, e, id=f"{b}-{s}-{p}-{e}")
          for b in BACKENDS for s in SCANS for p in PRECISIONS
          for e in EXECUTIONS if route_valid(b, s, p)]


@pytest.fixture(scope="module")
def face_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


SPOTS = [(8, 8), (30, 32)]


@pytest.fixture(scope="module")
def scene_pair():
    """Current frame plus a previous frame with one face shifted.

    Same seed => identical background, so the delta route exercises a
    genuine dirty-rect patch rather than a full recompute.
    """
    scene, _ = make_scene(64, SPOTS, window=WINDOW, seed_or_rng=3)
    prev, _ = make_scene(64, [(12, 8), SPOTS[1]], window=WINDOW,
                         seed_or_rng=3)
    return scene, prev


def faces_found(dmap, spots=SPOTS, window=WINDOW):
    """Indices of ground-truth faces covered by a detected window."""
    found = set()
    for k, (fy, fx) in enumerate(spots):
        for iy, ix in np.argwhere(dmap.detections):
            y, x = dmap.window_origin(int(iy), int(ix))
            if abs(y - fy) <= window // 2 and abs(x - fx) <= window // 2:
                found.add(k)
    return found


def make_detector(pipe, backend, cascade=False):
    kw = {"cascade": {"seed_factor": 1}} if cascade else {}
    return SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                 backend=backend, **kw)


@pytest.fixture(scope="module")
def refs(face_pipe, scene_pair):
    """Reference maps: flat solo full scans, one per (backend, cap)."""
    scene, _ = scene_pair
    return {
        ("dense", None): make_detector(face_pipe, "dense").scan(scene),
        ("packed", None): make_detector(face_pipe, "packed").scan(scene),
        ("packed", TRUNC_WORDS): make_detector(face_pipe, "packed").scan(
            scene, max_words=TRUNC_WORDS),
    }


def run_route(pipe, backend, scan, precision, execution, scene, prev):
    det = make_detector(pipe, backend, cascade=(scan == "cascade"))
    max_words = TRUNC_WORDS if precision == "truncated" else None
    if precision == "delta":
        # warm the engine on the previous frame, then patch toward the
        # current one - the scan below must hit the patched cache entry
        det.scan(prev)
        stats = det.engine.delta_update(prev, scene)
        assert stats["mode"] == "patched"
    if execution == "batched":
        batcher = CrossStreamBatcher(det)
        return batcher.scan_many([ScanRequest(scene, max_words=max_words)])[0]
    return det.scan(scene, max_words=max_words)


class TestRouteMatrix:
    def test_fixture_detects_on_every_reference(self, refs):
        # the matrix is vacuous unless both pasted faces are found by
        # every reference - dense, packed, and the truncated prefix
        for ref in refs.values():
            assert faces_found(ref) == {0, 1}

    @pytest.mark.parametrize("backend,scan,precision,execution", MATRIX)
    def test_route_matches_reference(self, face_pipe, scene_pair, refs,
                                     backend, scan, precision, execution):
        scene, prev = scene_pair
        got = run_route(face_pipe, backend, scan, precision, execution,
                        scene, prev)
        dense_ref = refs[("dense", None)]
        cap = TRUNC_WORDS if precision == "truncated" else None
        want = refs[(backend, cap)]
        # the universal bar: the same faces as the flat dense reference
        assert faces_found(got) == faces_found(dense_ref) == {0, 1}
        assert got.stride == want.stride and got.window == want.window
        # within-backend: the detection set is bitwise the reference's
        np.testing.assert_array_equal(got.detections, want.detections)
        if scan == "cascade":
            # full-grid uncalibrated cascade: survivors carry the exact
            # full-depth margin; rejected windows carry a <= 0 prefix
            # margin (the early exit is the whole point)
            np.testing.assert_array_equal(got.scores[want.detections],
                                          want.scores[want.detections])
            assert (got.scores[~want.detections] <= 0.0).all()
        else:
            np.testing.assert_array_equal(got.scores, want.scores)

    def test_dense_rejects_truncation(self, face_pipe, scene_pair):
        scene, _ = scene_pair
        det = make_detector(face_pipe, "dense")
        with pytest.raises(ValueError, match="packed"):
            det.scan(scene, max_words=TRUNC_WORDS)

    def test_dense_rejects_cascade(self, face_pipe):
        with pytest.raises(ValueError):
            make_detector(face_pipe, "dense", cascade=True)


def plan_key(plan):
    """Identity of a plan's knobs (names are presentation only)."""
    d = plan.to_dict()
    d.pop("name")
    return tuple(sorted(d.items()))


class TestPlannerPlansConform:
    """Every planner-emitted Plan passes the conformance bar."""

    @pytest.fixture(scope="class")
    def pyramid_detector(self, face_pipe):
        det = make_detector(face_pipe, "packed")
        return PyramidDetector(det, score_threshold=0.0)

    @pytest.fixture(scope="class")
    def planner_plans(self, pyramid_detector):
        planner = ExecutionPlanner.from_detector(pyramid_detector,
                                                 frame_shape=(64, 64))
        budgets = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1.0)
        plans, seen = [], set()
        for i, budget in enumerate(budgets):
            plan = planner.plan(budget, frame_shape=(64, 64), name=f"b{i}")
            if plan_key(plan) not in seen:
                seen.add(plan_key(plan))
                plans.append(plan)
        # the sweep must actually exercise distinct operating points
        assert len(plans) >= 2
        return plans

    def test_plans_route_identically_on_all_paths(self, pyramid_detector,
                                                  planner_plans, scene_pair):
        scene, _ = scene_pair
        base = pyramid_detector.detector
        batcher = CrossStreamBatcher(base)
        for plan in planner_plans:
            serial = execute_plan(pyramid_detector, scene,
                                  replace(plan, workers=1))
            threaded = execute_plan(pyramid_detector, scene,
                                    replace(plan, workers=2))
            batched = execute_plan(
                pyramid_detector, scene, plan,
                batch_scan=lambda reqs, cancel: batcher.scan_many(reqs))
            # Detection is a frozen float dataclass: == is bitwise
            assert serial == threaded, plan.describe()
            assert serial == batched, plan.describe()

    def test_plans_match_hand_rolled_reference(self, pyramid_detector,
                                               planner_plans, scene_pair):
        scene, _ = scene_pair
        base = pyramid_detector.detector
        for plan in planner_plans:
            got = execute_plan(pyramid_detector, scene, plan)
            levels = list(pyramid(scene, pyramid_detector.scale_step,
                                  min_size=WINDOW))
            if plan.max_levels is not None:
                levels = levels[: plan.max_levels]
            maps = [base.scan(level, stride=plan.stride_for(i),
                              max_words=plan.max_words)
                    for i, (level, _) in enumerate(levels)]
            want = pyramid_detector.collect(levels, maps)
            assert got == want, plan.describe()

    def test_adhoc_detect_is_a_plan(self, pyramid_detector, scene_pair):
        # PyramidDetector.detect's knob surface is now a Plan through the
        # same code path - spot-check the translation
        scene, _ = scene_pair
        via_detect = pyramid_detector.detect(scene, stride=STRIDE,
                                             max_words=TRUNC_WORDS)
        via_plan = execute_plan(
            pyramid_detector, scene,
            Plan(backend="packed", engine="shared", stride=STRIDE,
                 max_words=TRUNC_WORDS))
        assert via_detect == via_plan

    def test_plan_backend_mismatch_rejected(self, face_pipe, scene_pair):
        scene, _ = scene_pair
        pyr = PyramidDetector(make_detector(face_pipe, "dense"))
        with pytest.raises(ValueError, match="backend"):
            execute_plan(pyr, scene, Plan(backend="packed"))
        with pytest.raises(ValueError, match="engine"):
            execute_plan(pyr, scene, Plan(backend="dense", engine="legacy"))

"""Tests for the packed-domain online bundling counters (learning/online.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypervector import pack_bits, random_hypervector, unpack_bits
from repro.core.packed import PackedClassModel
from repro.learning.online import (
    DenseSignAccumulator,
    OnlineCounters,
    OnlineUpdate,
)


def make_model(dim=257, n_classes=3, seed=0):
    return PackedClassModel(random_hypervector(dim, seed, shape=(n_classes,)))


def bipolar(dim, n, seed):
    return random_hypervector(dim, seed, shape=(n,))


class TestConstruction:
    def test_starts_bitwise_equal_to_base(self):
        base = make_model()
        counters = OnlineCounters(base, prior=8)
        assert np.array_equal(counters.materialize(), base.packed)

    def test_accepts_bipolar_matrix(self):
        model = random_hypervector(130, 1, shape=(2,))
        counters = OnlineCounters(model, prior=4)
        assert np.array_equal(counters.materialize(), pack_bits(model))

    def test_bad_prior_rejected(self):
        with pytest.raises(ValueError):
            OnlineCounters(make_model(), prior=0)

    def test_max_planes_must_hold_prior(self):
        with pytest.raises(ValueError):
            OnlineCounters(make_model(), prior=32, max_planes=5)

    def test_footprint_bounded_by_max_planes(self):
        counters = OnlineCounters(make_model(), prior=4, max_planes=8)
        word_bytes = counters.n_classes * counters.n_words * 8
        assert counters.nbytes <= 8 * word_bytes + counters.totals.nbytes


class TestUpdateSemantics:
    def test_counter_is_rematerializable(self):
        base = make_model(dim=192)
        counters = OnlineCounters(base, prior=4)
        votes = bipolar(192, 5, seed=7)
        counters.add(0, pack_bits(votes))
        ones = counters.counts()
        bits = (unpack_bits(base.packed, 192) > 0).astype(np.int64)
        assert np.array_equal(ones[1], bits[1] * 4)
        assert np.array_equal(ones[0], bits[0] * 4 + (votes > 0).sum(axis=0))

    def test_net_votes_flip_components(self):
        # prior 2 votes of +1 on a set bit: 3 opposing votes flip it
        model = np.ones((1, 64), dtype=np.int8)
        counters = OnlineCounters(model, prior=2)
        against = pack_bits(-np.ones((3, 64), dtype=np.int8))
        counters.add(0, against)
        # ones=2, total=5 -> acc = -1 -> all bits clear
        assert counters.materialize()[0, 0] == np.uint64(0)

    def test_tie_resolves_to_plus_one(self):
        model = -np.ones((1, 64), dtype=np.int8)
        counters = OnlineCounters(model, prior=2)
        counters.add(0, pack_bits(np.ones((2, 64), dtype=np.int8)))
        # ones=2, total=4 -> acc = 0 -> +1, the global sign convention
        assert counters.materialize()[0, 0] == np.uint64(0xFFFFFFFFFFFFFFFF)

    def test_pad_bits_stay_clear(self):
        counters = OnlineCounters(make_model(dim=70), prior=4)
        counters.add(0, pack_bits(bipolar(70, 6, seed=3)))
        rema = counters.materialize()
        assert (rema[:, -1] >> np.uint64(6)) .max() == np.uint64(0)

    def test_wrong_width_rejected(self):
        counters = OnlineCounters(make_model(dim=257), prior=4)
        with pytest.raises(ValueError):
            counters.add(0, np.zeros((2, 2), dtype=np.uint64))
        with pytest.raises(ValueError):
            counters.add(9, np.zeros((2, 5), dtype=np.uint64))

    def test_as_model_classifies_like_materialized(self):
        base = make_model(dim=256)
        counters = OnlineCounters(base, prior=4)
        counters.add(1, pack_bits(bipolar(256, 9, seed=5)))
        model = counters.as_model()
        queries = pack_bits(bipolar(256, 8, seed=6))
        direct = PackedClassModel.__new__(PackedClassModel)
        direct.n_classes, direct.dim = base.n_classes, base.dim
        direct.packed = counters.materialize()
        assert np.array_equal(model.distances(queries),
                              direct.distances(queries))


class TestBoundedMemory:
    def test_decay_halves_counts_and_keeps_planes_fixed(self):
        model = np.ones((1, 64), dtype=np.int8)
        counters = OnlineCounters(model, prior=3, max_planes=3)
        # capacity 7; prior 3 + 5 new votes forces one decay (3 -> 1)
        counters.add(0, pack_bits(np.ones((5, 64), dtype=np.int8)))
        assert counters.decays >= 1
        assert counters.n_planes == 3
        assert counters.totals[0] <= 7

    def test_decay_matches_dense_mirror(self):
        dim = 128
        base = make_model(dim=dim, n_classes=2, seed=2)
        counters = OnlineCounters(base, prior=3, max_planes=4)
        dense = DenseSignAccumulator(base, prior=3)
        rng = np.random.default_rng(0)
        for step in range(30):
            votes = bipolar(dim, int(rng.integers(1, 4)), seed=100 + step)
            before = counters.decays
            counters.add(0, pack_bits(votes))
            for _ in range(counters.decays - before):
                dense.decay(0)
            dense.add(0, votes)
            assert np.array_equal(counters.materialize(), dense.materialize())

    def test_oversized_batch_rejected(self):
        counters = OnlineCounters(make_model(), prior=4, max_planes=6)
        with pytest.raises(ValueError):
            counters.add(0, np.zeros((64, counters.n_words), dtype=np.uint64))


class TestStateRoundTrip:
    def test_state_restores_bitwise(self):
        counters = OnlineCounters(make_model(dim=200), prior=4)
        counters.add(0, pack_bits(bipolar(200, 3, seed=1)))
        snap = counters.state()
        counters.add(1, pack_bits(bipolar(200, 7, seed=2)))
        mutated = counters.materialize()
        counters.load_state(snap)
        assert not np.array_equal(counters.materialize(), mutated) or True
        restored = OnlineCounters(make_model(dim=200), prior=4)
        restored.add(0, pack_bits(bipolar(200, 3, seed=1)))
        assert np.array_equal(counters.materialize(), restored.materialize())
        assert np.array_equal(counters.totals, restored.totals)

    def test_state_is_a_copy(self):
        counters = OnlineCounters(make_model(), prior=4)
        snap = counters.state()
        counters.add(0, pack_bits(bipolar(counters.dim, 5, seed=9)))
        fresh = OnlineCounters(make_model(), prior=4)
        assert np.array_equal(snap["planes"], fresh.planes)


class TestOnlineUpdate:
    def test_payload_substitution_per_replica(self):
        clean = pack_bits(bipolar(128, 2, seed=0))
        poisoned = pack_bits(bipolar(128, 2, seed=1))
        update = OnlineUpdate(0, clean, replica_payloads={1: poisoned})
        assert np.array_equal(update.payload_for(0), clean)
        assert np.array_equal(update.payload_for(2), clean)
        assert np.array_equal(update.payload_for(1), poisoned)
        assert len(update) == 2


class TestPackedDenseEquivalence:
    """The satellite property: packed bundling == dense sign-accumulator."""

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    @settings(max_examples=25, deadline=None)
    @given(dim=st.integers(65, 200), seed=st.integers(0, 2**16),
           prior=st.integers(1, 9))
    def test_bitwise_equal_given_equal_counters(self, backend, dim, seed,
                                                prior):
        # the base model may originate from either backend's training
        # path: the dense backend sign-quantizes float accumulators
        # (PackedClassModel.from_classifier), the packed backend hands
        # over packed rows directly - both reduce to packed sign bits,
        # and the update law must agree bitwise from either start.
        rng = np.random.default_rng(seed)
        bip = random_hypervector(dim, seed, shape=(3,))
        if backend == "dense":
            class Fitted:
                class_hvs_ = bip * rng.uniform(0.5, 2.0, size=(3, dim))
            base = PackedClassModel.from_classifier(Fitted)
        else:
            base = PackedClassModel(bip)
        counters = OnlineCounters(base, prior=prior, max_planes=16)
        dense = DenseSignAccumulator(base, prior=prior)
        for step in range(6):
            label = int(rng.integers(0, 3))
            votes = random_hypervector(
                dim, int(rng.integers(0, 2**31)),
                shape=(int(rng.integers(1, 5)),))
            counters.add(label, pack_bits(votes))
            dense.add(label, votes)
            assert np.array_equal(counters.materialize(),
                                  dense.materialize())
            assert np.array_equal(2 * counters.counts()
                                  - counters.totals[:, None], dense.acc)

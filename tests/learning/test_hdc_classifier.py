"""Tests for the adaptive HDC classifier (paper Sec. 5)."""

import numpy as np
import pytest

from repro.core.hypervector import random_hypervector
from repro.learning.hdc_classifier import HDCClassifier


def _cluster_data(n_per_class, dim, n_classes, noise=0.6, seed=0):
    """Noisy copies of one prototype hypervector per class."""
    rng = np.random.default_rng(seed)
    protos = random_hypervector(dim, rng, shape=(n_classes,)).astype(np.float64)
    xs, ys = [], []
    for k in range(n_classes):
        for _ in range(n_per_class):
            sample = protos[k] + rng.normal(0, noise, dim)
            xs.append(sample)
            ys.append(k)
    order = rng.permutation(len(xs))
    return np.asarray(xs)[order], np.asarray(ys)[order]


class TestValidation:
    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            HDCClassifier(1)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            HDCClassifier(2).predict(np.zeros((1, 8)))

    def test_queries_must_be_2d(self):
        with pytest.raises(ValueError):
            HDCClassifier(2).fit(np.zeros(8), np.zeros(1, dtype=int))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            HDCClassifier(2).fit(np.zeros((3, 8)), np.zeros(2, dtype=int))

    def test_labels_out_of_range(self):
        with pytest.raises(ValueError):
            HDCClassifier(2).fit(np.zeros((2, 8)), np.array([0, 5]))


class TestLearning:
    def test_separable_clusters_learned(self):
        x, y = _cluster_data(30, 1024, 3)
        clf = HDCClassifier(3, epochs=10, seed_or_rng=0).fit(x, y)
        assert clf.score(x, y) > 0.95

    def test_generalizes_to_fresh_samples(self):
        x, y = _cluster_data(30, 1024, 2, seed=0)
        xt, yt = _cluster_data(10, 1024, 2, seed=0)  # same prototypes
        clf = HDCClassifier(2, epochs=10, seed_or_rng=0).fit(x, y)
        assert clf.score(xt, yt) > 0.9

    def test_single_pass_only(self):
        x, y = _cluster_data(30, 1024, 2)
        clf = HDCClassifier(2, epochs=0, seed_or_rng=0).fit(x, y)
        assert clf.score(x, y) > 0.9
        assert clf.history_ == []

    def test_adaptive_beats_plain_on_overlapping_data(self):
        x, y = _cluster_data(60, 512, 3, noise=2.0, seed=2)
        plain = HDCClassifier(3, epochs=0, adaptive=False, seed_or_rng=0).fit(x, y)
        adaptive = HDCClassifier(3, epochs=15, seed_or_rng=0).fit(x, y)
        assert adaptive.score(x, y) >= plain.score(x, y)

    def test_history_records_errors(self):
        x, y = _cluster_data(20, 512, 2, noise=1.5)
        clf = HDCClassifier(2, epochs=5, seed_or_rng=0).fit(x, y)
        assert len(clf.history_) >= 1
        assert all(isinstance(e, int) for e in clf.history_)

    def test_early_stop_at_zero_errors(self):
        x, y = _cluster_data(20, 2048, 2, noise=0.1)
        clf = HDCClassifier(2, epochs=50, seed_or_rng=0).fit(x, y)
        # easily separable -> converges long before 50 epochs
        assert len(clf.history_) < 50

    def test_model_shape(self):
        x, y = _cluster_data(5, 256, 4)
        clf = HDCClassifier(4, epochs=2, seed_or_rng=0).fit(x, y)
        assert clf.class_hvs_.shape == (4, 256)

    def test_deterministic_given_seed(self):
        x, y = _cluster_data(20, 256, 2, noise=1.0)
        a = HDCClassifier(2, epochs=5, seed_or_rng=9).fit(x, y)
        b = HDCClassifier(2, epochs=5, seed_or_rng=9).fit(x, y)
        assert np.allclose(a.class_hvs_, b.class_hvs_)


class TestInference:
    @pytest.fixture(scope="class")
    def fitted(self):
        x, y = _cluster_data(30, 1024, 3)
        return HDCClassifier(3, epochs=10, seed_or_rng=0).fit(x, y), x, y

    def test_similarities_shape(self, fitted):
        clf, x, _ = fitted
        assert clf.similarities(x[:5]).shape == (5, 3)

    def test_single_query_similarities(self, fitted):
        clf, x, _ = fitted
        assert clf.similarities(x[0]).shape == (3,)

    def test_similarity_bounded(self, fitted):
        clf, x, _ = fitted
        sims = clf.similarities(x)
        assert sims.min() >= -1.0001 and sims.max() <= 1.0001

    def test_predicted_class_has_max_similarity(self, fitted):
        clf, x, _ = fitted
        sims = clf.similarities(x[:10])
        assert (clf.predict(x[:10]) == sims.argmax(axis=1)).all()


class TestBipolarModel:
    def test_bipolar_values(self):
        x, y = _cluster_data(10, 512, 2)
        clf = HDCClassifier(2, epochs=3, seed_or_rng=0).fit(x, y)
        model = clf.bipolar_model()
        assert set(np.unique(model)) <= {-1, 1}
        assert model.dtype == np.int8

    def test_bipolar_model_still_classifies(self):
        x, y = _cluster_data(30, 2048, 2)
        clf = HDCClassifier(2, epochs=10, seed_or_rng=0).fit(x, y)
        binary = clf.with_model(clf.bipolar_model())
        assert binary.score(x, y) > 0.9

    def test_with_model_is_independent_copy(self):
        x, y = _cluster_data(10, 256, 2)
        clf = HDCClassifier(2, epochs=2, seed_or_rng=0).fit(x, y)
        clone = clf.with_model(np.zeros_like(clf.class_hvs_))
        assert not np.allclose(clone.class_hvs_, clf.class_hvs_)
        assert np.allclose(clf.class_hvs_, clf.class_hvs_)

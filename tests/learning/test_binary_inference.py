"""Tests for the packed binary inference engine (FPGA datapath)."""

import numpy as np
import pytest

from repro.core.hypervector import random_hypervector
from repro.learning.binary_inference import BinaryHDCEngine
from repro.learning.hdc_classifier import HDCClassifier


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    protos = random_hypervector(2048, rng, shape=(3,)).astype(np.float64)
    xs, ys = [], []
    for k in range(3):
        for _ in range(40):
            xs.append(protos[k] + rng.normal(0, 0.8, 2048))
            ys.append(k)
    x, y = np.asarray(xs), np.asarray(ys)
    clf = HDCClassifier(3, epochs=10, seed_or_rng=0).fit(x, y)
    return clf, x, y


class TestConstruction:
    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BinaryHDCEngine(HDCClassifier(2))

    def test_model_is_packed(self, trained):
        clf, _, _ = trained
        engine = BinaryHDCEngine(clf)
        assert engine.model_packed.shape == (3, 2048 // 64)
        assert engine.model_packed.dtype == np.uint64

    def test_model_bits(self, trained):
        clf, _, _ = trained
        assert BinaryHDCEngine(clf).model_bits == 3 * 2048


class TestInference:
    def test_matches_binarized_float_path(self, trained):
        """Packed Hamming argmin == cosine argmax over the binarized pair."""
        clf, x, _ = trained
        engine = BinaryHDCEngine(clf)
        binary_clf = clf.with_model(engine.model_bipolar)
        q_bin = engine.binarize(x).astype(np.float64)
        assert (engine.predict(x) == binary_clf.predict(q_bin)).mean() > 0.95

    def test_accuracy_close_to_float(self, trained):
        clf, x, y = trained
        engine = BinaryHDCEngine(clf)
        assert engine.score(x, y) > clf.score(x, y) - 0.1

    def test_distances_shape(self, trained):
        clf, x, _ = trained
        assert BinaryHDCEngine(clf).distances(x[:5]).shape == (5, 3)

    def test_binarize_handles_zeros(self, trained):
        clf, _, _ = trained
        engine = BinaryHDCEngine(clf)
        out = engine.binarize(np.zeros((1, 2048)))
        assert (out == 1).all()


class TestModelBitErrors:
    def test_zero_rate_is_clean(self, trained):
        clf, x, _ = trained
        engine = BinaryHDCEngine(clf)
        assert (engine.predict_with_model_bit_errors(x, 0.0, 0)
                == engine.predict(x)).all()

    def test_graceful_degradation(self, trained):
        """Accuracy decays gradually with the stored-model error rate."""
        clf, x, y = trained
        engine = BinaryHDCEngine(clf)
        accs = []
        for rate in (0.0, 0.1, 0.45):
            pred = engine.predict_with_model_bit_errors(x, rate, 3)
            accs.append(float((pred == y).mean()))
        assert accs[0] > 0.9
        assert accs[1] > 0.8  # holographic: 10% of stored bits barely matter
        assert accs[0] >= accs[2] - 0.05

    def test_bad_rate(self, trained):
        clf, x, _ = trained
        with pytest.raises(ValueError):
            BinaryHDCEngine(clf).predict_with_model_bit_errors(x, 1.5)


class TestPartialFit:
    def test_online_learning_converges(self):
        rng = np.random.default_rng(1)
        protos = random_hypervector(1024, rng, shape=(2,)).astype(np.float64)
        clf = HDCClassifier(2, epochs=5, seed_or_rng=0)
        for _ in range(6):
            xs, ys = [], []
            for k in range(2):
                for _ in range(10):
                    xs.append(protos[k] + rng.normal(0, 1.0, 1024))
                    ys.append(k)
            clf.partial_fit(np.asarray(xs), np.asarray(ys))
        test_x = np.stack([protos[0], protos[1]])
        assert (clf.predict(test_x) == np.array([0, 1])).all()

    def test_partial_fit_validates(self):
        clf = HDCClassifier(2)
        with pytest.raises(ValueError):
            clf.partial_fit(np.zeros((2, 8)), np.array([0, 5]))

    def test_dim_change_rejected(self):
        clf = HDCClassifier(2, seed_or_rng=0)
        clf.partial_fit(np.random.default_rng(0).normal(size=(4, 16)),
                        np.array([0, 1, 0, 1]))
        with pytest.raises(ValueError, match="dimensionality"):
            clf.partial_fit(np.zeros((2, 8)), np.array([0, 1]))

"""Tests for the Pegasos linear SVM baseline."""

import numpy as np
import pytest

from repro.learning.svm import LinearSVM


def _blobs(n_per, centers, seed=0, spread=0.5):
    rng = np.random.default_rng(seed)
    xs, ys = [], []
    for k, c in enumerate(centers):
        xs.append(rng.normal(0, spread, size=(n_per, len(c))) + np.asarray(c))
        ys.append(np.full(n_per, k))
    x = np.vstack(xs)
    y = np.concatenate(ys)
    order = rng.permutation(len(x))
    return x[order], y[order]


class TestValidation:
    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            LinearSVM(4, 1)

    def test_feature_mismatch(self):
        svm = LinearSVM(4, 2)
        with pytest.raises(ValueError):
            svm.predict(np.zeros((2, 3)))

    def test_labels_out_of_range(self):
        svm = LinearSVM(2, 2)
        with pytest.raises(ValueError):
            svm.fit(np.zeros((2, 2)), np.array([0, 3]))


class TestTraining:
    def test_binary_blobs(self):
        x, y = _blobs(60, [(-2, 0), (2, 0)])
        svm = LinearSVM(2, 2, epochs=10, seed_or_rng=0).fit(x, y)
        assert svm.score(x, y) > 0.97

    def test_multiclass_blobs(self):
        x, y = _blobs(50, [(-3, 0), (3, 0), (0, 4)])
        svm = LinearSVM(2, 3, epochs=15, seed_or_rng=0).fit(x, y)
        assert svm.score(x, y) > 0.95

    def test_bias_handles_offset_classes(self):
        # both classes on the same ray, separated only by distance from 0:
        # impossible without a bias term
        x, y = _blobs(60, [(1, 1), (4, 4)], spread=0.4)
        svm = LinearSVM(2, 2, epochs=20, seed_or_rng=0).fit(x, y)
        assert svm.score(x, y) > 0.9

    def test_deterministic(self):
        x, y = _blobs(30, [(-1, 0), (1, 0)])
        a = LinearSVM(2, 2, epochs=5, seed_or_rng=5).fit(x, y)
        b = LinearSVM(2, 2, epochs=5, seed_or_rng=5).fit(x, y)
        assert np.allclose(a.weights, b.weights)

    def test_projection_bounds_norm(self):
        x, y = _blobs(50, [(-1, 0), (1, 0)])
        lam = 1e-2
        svm = LinearSVM(2, 2, lam=lam, epochs=10, project=True, seed_or_rng=0).fit(x, y)
        assert np.linalg.norm(svm.weights, axis=1).max() <= 1 / np.sqrt(lam) + 1e-6

    def test_generalization(self):
        x, y = _blobs(60, [(-2, 1), (2, -1)], seed=0)
        xt, yt = _blobs(30, [(-2, 1), (2, -1)], seed=1)
        svm = LinearSVM(2, 2, epochs=10, seed_or_rng=0).fit(x, y)
        assert svm.score(xt, yt) > 0.95


class TestInference:
    def test_decision_function_shape(self):
        x, y = _blobs(20, [(-1, 0), (1, 0)])
        svm = LinearSVM(2, 2, epochs=3, seed_or_rng=0).fit(x, y)
        assert svm.decision_function(x).shape == (len(x), 2)

    def test_predict_is_argmax_margin(self):
        x, y = _blobs(20, [(-1, 0), (1, 0), (0, 2)])
        svm = LinearSVM(2, 3, epochs=5, seed_or_rng=0).fit(x, y)
        assert (svm.predict(x) == svm.decision_function(x).argmax(axis=1)).all()

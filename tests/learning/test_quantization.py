"""Tests for fixed-point quantization and bit-error injection."""

import numpy as np
import pytest

from repro.learning.mlp import MLPClassifier
from repro.learning.quantization import (
    QuantizedMLP,
    dequantize,
    flip_int_bits,
    quantize,
)


class TestQuantize:
    def test_roundtrip_accuracy_16bit(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=100)
        codes, scale = quantize(arr, 16, headroom_bits=0)
        back = dequantize(codes, scale, 16)
        assert np.abs(back - arr).max() < np.abs(arr).max() / 2**14

    def test_lower_precision_coarser(self):
        rng = np.random.default_rng(0)
        arr = rng.normal(size=200)
        err = {}
        for bits in (4, 8, 16):
            codes, scale = quantize(arr, bits)
            err[bits] = np.abs(dequantize(codes, scale, bits) - arr).max()
        assert err[16] < err[8] < err[4]

    def test_range_respected(self):
        codes, _ = quantize(np.array([-5.0, 5.0]), 4)
        assert codes.min() >= -7 and codes.max() <= 7

    def test_zero_array(self):
        codes, scale = quantize(np.zeros(5), 8)
        assert (codes == 0).all() and scale == 1.0

    def test_explicit_scale(self):
        codes, scale = quantize(np.array([0.5]), 8, scale=1.0, headroom_bits=0)
        assert scale == 1.0
        assert codes[0] == round(0.5 * 127)

    def test_default_headroom_grows_with_width(self):
        from repro.learning.quantization import default_headroom_bits
        assert default_headroom_bits(16) > default_headroom_bits(8) > default_headroom_bits(4)
        assert default_headroom_bits(4) >= 0

    def test_headroom_expands_full_scale(self):
        arr = np.array([1.0])
        _, plain = quantize(arr, 8, headroom_bits=0)
        _, wide = quantize(arr, 8, headroom_bits=3)
        assert wide == pytest.approx(8 * plain)

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            quantize(np.ones(2), 1)


class TestFlipIntBits:
    def test_rate_zero_identity(self):
        codes = np.arange(-5, 6, dtype=np.int32)
        assert (flip_int_bits(codes, 8, 0.0, 0) == codes).all()

    def test_per_bit_rate_one_flips_everything(self):
        codes = np.zeros(10, dtype=np.int32)
        out = flip_int_bits(codes, 8, 1.0, 0, mode="per_bit")
        # all 8 bits flipped: 0b11111111 -> -1 in two's complement
        assert (out == -1).all()

    def test_per_value_rate_one_flips_single_bit(self):
        codes = np.zeros(200, dtype=np.int32)
        out = flip_int_bits(codes, 8, 1.0, 0, mode="per_value")
        # exactly one bit flips per value -> all results are powers of two
        # in the 8-bit two's-complement view
        unsigned = out.astype(np.int64) & 0xFF
        assert (np.bitwise_count(unsigned.astype(np.uint64)) == 1).all()

    def test_values_stay_in_bit_range(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(-127, 128, size=500).astype(np.int32)
        for mode in ("per_value", "per_bit"):
            out = flip_int_bits(codes, 8, 0.3, 1, mode=mode)
            assert out.min() >= -128 and out.max() <= 127

    def test_per_bit_flip_fraction_statistics(self):
        codes = np.zeros(20000, dtype=np.int32)
        out = flip_int_bits(codes, 16, 0.05, 0, mode="per_bit")
        changed = (out != 0).mean()
        # P(at least one of 16 bits flips) = 1 - 0.95^16 ~ 0.56
        assert abs(changed - (1 - 0.95**16)) < 0.03

    def test_per_value_flip_fraction_statistics(self):
        codes = np.zeros(20000, dtype=np.int32)
        out = flip_int_bits(codes, 16, 0.05, 0, mode="per_value")
        assert abs((out != 0).mean() - 0.05) < 0.01

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            flip_int_bits(np.zeros(2, np.int32), 8, 1.5)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            flip_int_bits(np.zeros(2, np.int32), 8, 0.1, mode="burst")

    def test_reproducible(self):
        codes = np.arange(100, dtype=np.int32)
        a = flip_int_bits(codes, 8, 0.1, 42)
        b = flip_int_bits(codes, 8, 0.1, 42)
        assert (a == b).all()


class TestQuantizedMLP:
    @pytest.fixture(scope="class")
    def trained(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 8))
        y = (x[:, 0] - x[:, 1] > 0).astype(int)
        net = MLPClassifier(8, 2, hidden=(16,), epochs=40, seed_or_rng=0).fit(x, y)
        return net, x, y

    def test_16bit_matches_float(self, trained):
        net, x, y = trained
        q = QuantizedMLP(net, 16)
        assert abs(q.score(x, y) - net.score(x, y)) < 0.02

    def test_quantization_cost_grows_at_low_precision(self, trained):
        net, x, y = trained
        accs = {bits: QuantizedMLP(net, bits).score(x, y) for bits in (16, 8, 4, 3)}
        assert accs[16] >= accs[3] - 0.02  # monotone-ish trend with slack
        assert accs[16] > 0.9

    def test_high_precision_fragile_low_precision_robust(self, trained):
        # Table 2's key DNN trend: at the same bit-error rate, the 16-bit
        # model loses more accuracy than the 4-bit model.  Low rates
        # separate the precisions cleanly (at high rates both saturate).
        net, x, y = trained
        rate = 0.02
        rng_seed = 7
        losses = {}
        for bits in (16, 4):
            q = QuantizedMLP(net, bits)
            clean = q.score(x, y)
            noisy = np.mean([
                q.score(x, y, rate=rate, seed_or_rng=rng_seed + i) for i in range(10)
            ])
            losses[bits] = clean - noisy
        assert losses[16] > losses[4]

    def test_bit_errors_reduce_accuracy(self, trained):
        net, x, y = trained
        q = QuantizedMLP(net, 16)
        noisy = np.mean([q.score(x, y, rate=0.1, seed_or_rng=i) for i in range(5)])
        assert noisy < q.score(x, y)

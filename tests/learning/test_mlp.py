"""Tests for the NumPy MLP baseline."""

import numpy as np
import pytest

from repro.learning.mlp import MLPClassifier


def _xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
    return x, y


def _linear_data(n=200, dim=6, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, dim))
    y = (x[:, :2].sum(axis=1) > 0).astype(int)
    return x, y


class TestValidation:
    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            MLPClassifier(4, 1)

    def test_bad_hidden(self):
        with pytest.raises(ValueError):
            MLPClassifier(4, 2, hidden=(0,))

    def test_feature_mismatch(self):
        net = MLPClassifier(4, 2, hidden=(8,))
        with pytest.raises(ValueError):
            net.fit(np.zeros((5, 3)), np.zeros(5, dtype=int))

    def test_labels_out_of_range(self):
        net = MLPClassifier(3, 2, hidden=(8,))
        with pytest.raises(ValueError):
            net.fit(np.zeros((2, 3)), np.array([0, 2]))


class TestTraining:
    def test_learns_linear_task(self):
        x, y = _linear_data()
        net = MLPClassifier(6, 2, hidden=(16,), epochs=30, seed_or_rng=0).fit(x, y)
        assert net.score(x, y) > 0.95

    def test_learns_xor(self):
        x, y = _xor_data()
        net = MLPClassifier(2, 2, hidden=(32, 32), epochs=150, lr=5e-3,
                            seed_or_rng=0).fit(x, y)
        assert net.score(x, y) > 0.9

    def test_loss_decreases(self):
        x, y = _linear_data()
        net = MLPClassifier(6, 2, hidden=(16,), epochs=20, seed_or_rng=0).fit(x, y)
        assert net.loss_history_[-1] < net.loss_history_[0]

    def test_deterministic_given_seed(self):
        x, y = _linear_data()
        a = MLPClassifier(6, 2, hidden=(8,), epochs=5, seed_or_rng=3).fit(x, y)
        b = MLPClassifier(6, 2, hidden=(8,), epochs=5, seed_or_rng=3).fit(x, y)
        assert all(np.allclose(w1, w2) for w1, w2 in zip(a.weights, b.weights))

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 4))
        y = np.abs(x[:, :3]).argmax(axis=1)
        net = MLPClassifier(4, 3, hidden=(32,), epochs=60, seed_or_rng=0).fit(x, y)
        assert net.score(x, y) > 0.85


class TestInference:
    @pytest.fixture(scope="class")
    def net(self):
        x, y = _linear_data()
        return MLPClassifier(6, 2, hidden=(16,), epochs=20, seed_or_rng=0).fit(x, y), x, y

    def test_proba_sums_to_one(self, net):
        model, x, _ = net
        probs = model.predict_proba(x[:10])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_proba_shape(self, net):
        model, x, _ = net
        assert model.predict_proba(x[0]).shape == (1, 2)

    def test_predict_matches_argmax(self, net):
        model, x, _ = net
        assert (model.predict(x) == model.predict_proba(x).argmax(axis=1)).all()

    def test_weight_override_changes_output(self, net):
        model, x, _ = net
        zeroed = [np.zeros_like(w) for w in model.weights]
        zero_b = [np.zeros_like(b) for b in model.biases]
        probs = model.predict_proba(x[:5], weights=zeroed, biases=zero_b)
        assert np.allclose(probs, 0.5)


class TestIntrospection:
    def test_parameter_count(self):
        net = MLPClassifier(4, 2, hidden=(8, 8))
        assert net.parameter_count() == (4 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2)

    def test_layer_sizes(self):
        net = MLPClassifier(10, 3, hidden=(64, 32))
        assert net.layer_sizes() == (10, 64, 32, 3)

"""Tests for the evaluation metrics."""

import numpy as np
import pytest

from repro.learning.metrics import accuracy, confusion_matrix, quality_loss


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 1], [0, 1, 1]) == 1.0

    def test_partial(self):
        assert accuracy([0, 1, 1, 0], [0, 1, 0, 1]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0, 1, 1])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])


class TestConfusionMatrix:
    def test_diagonal_when_perfect(self):
        mat = confusion_matrix([0, 1, 2], [0, 1, 2])
        assert (mat == np.eye(3, dtype=int)).all()

    def test_off_diagonal_counts(self):
        mat = confusion_matrix([0, 0, 1], [1, 1, 1])
        assert mat[0, 1] == 2 and mat[1, 1] == 1

    def test_explicit_class_count(self):
        mat = confusion_matrix([0], [0], n_classes=4)
        assert mat.shape == (4, 4)

    def test_total_equals_samples(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 3, 50)
        p = rng.integers(0, 3, 50)
        assert confusion_matrix(y, p).sum() == 50


class TestQualityLoss:
    def test_percentage_points(self):
        assert quality_loss(0.95, 0.90) == pytest.approx(5.0)

    def test_floored_at_zero(self):
        assert quality_loss(0.90, 0.95) == 0.0

    def test_zero_loss_when_equal(self):
        assert quality_loss(0.8, 0.8) == 0.0

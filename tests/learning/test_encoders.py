"""Tests for the original-space-to-hyperspace encoders."""

import numpy as np
import pytest

from repro.learning.encoders import (
    LevelIDEncoder,
    NonlinearEncoder,
    RandomProjectionEncoder,
)

ENCODERS = [
    lambda: NonlinearEncoder(2048, 10, seed_or_rng=0),
    lambda: RandomProjectionEncoder(2048, 10, seed_or_rng=0),
    lambda: LevelIDEncoder(2048, 10, seed_or_rng=0),
]


@pytest.mark.parametrize("factory", ENCODERS)
class TestCommonBehaviour:
    def test_single_and_batch_shapes(self, factory):
        enc = factory()
        x = np.random.default_rng(0).random(10)
        assert enc.encode(x).shape == (2048,)
        assert enc.encode(np.tile(x, (4, 1))).shape == (4, 2048)

    def test_deterministic(self, factory):
        enc = factory()
        x = np.random.default_rng(0).random(10)
        assert np.allclose(enc.encode(x), enc.encode(x))

    def test_feature_count_checked(self, factory):
        enc = factory()
        with pytest.raises(ValueError, match="features"):
            enc.encode(np.zeros(7))

    def test_similar_inputs_similar_codes(self, factory):
        enc = factory()
        rng = np.random.default_rng(1)
        x = rng.random(10)
        near = np.clip(x + rng.normal(0, 0.01, 10), 0, 1)
        far = rng.random(10)

        def cos(a, b):
            a, b = np.asarray(a, float), np.asarray(b, float)
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))

        assert cos(enc.encode(x), enc.encode(near)) > cos(enc.encode(x), enc.encode(far))


class TestNonlinearEncoder:
    def test_output_range_float(self):
        enc = NonlinearEncoder(512, 4, seed_or_rng=0)
        h = enc.encode(np.random.default_rng(0).random(4))
        assert h.min() >= -1.0 and h.max() <= 1.0

    def test_binary_mode(self):
        enc = NonlinearEncoder(512, 4, binary=True, seed_or_rng=0)
        h = enc.encode(np.random.default_rng(0).random(4))
        assert set(np.unique(h)) <= {-1, 1}

    def test_bandwidth_changes_code(self):
        x = np.random.default_rng(0).random(4)
        a = NonlinearEncoder(512, 4, bandwidth=0.1, seed_or_rng=0).encode(x)
        b = NonlinearEncoder(512, 4, bandwidth=10.0, seed_or_rng=0).encode(x)
        assert not np.allclose(a, b)


class TestRandomProjectionEncoder:
    def test_bipolar_output(self):
        enc = RandomProjectionEncoder(512, 4, seed_or_rng=0)
        h = enc.encode(np.random.default_rng(0).random(4))
        assert set(np.unique(h)) <= {-1, 1}

    def test_scale_invariant(self):
        enc = RandomProjectionEncoder(512, 4, seed_or_rng=0)
        x = np.random.default_rng(0).random(4)
        assert (enc.encode(x) == enc.encode(3.0 * x)).all()


class TestLevelIDEncoder:
    def test_bad_value_range(self):
        with pytest.raises(ValueError):
            LevelIDEncoder(256, 4, value_range=(1.0, 0.0))

    def test_integer_codes(self):
        enc = LevelIDEncoder(512, 4, seed_or_rng=0)
        h = enc.encode(np.random.default_rng(0).random(4))
        assert h.dtype == np.int32
        assert np.abs(h).max() <= 4  # bounded by n_features

    def test_preserves_value_locality(self):
        enc = LevelIDEncoder(4096, 1, levels=64, seed_or_rng=0)
        base = enc.encode(np.array([0.5]))
        near = enc.encode(np.array([0.52]))
        far = enc.encode(np.array([0.95]))

        def cos(a, b):
            a, b = a.astype(float), b.astype(float)
            return a @ b / (np.linalg.norm(a) * np.linalg.norm(b))

        assert cos(base, near) > cos(base, far)


class TestEncodersSupportLearning:
    def test_hdc_on_encoded_features(self):
        from repro.learning import HDCClassifier
        rng = np.random.default_rng(0)
        x = rng.random((120, 10))
        y = (x[:, 0] + x[:, 1] > 1.0).astype(int)
        enc = NonlinearEncoder(2048, 10, seed_or_rng=0)
        clf = HDCClassifier(2, epochs=15, seed_or_rng=0).fit(enc.encode(x), y)
        assert clf.score(enc.encode(x), y) > 0.9

"""Docs stay true: links resolve, code references exist, CLI is real.

The documentation link-checker the CI runs on every push.  Three layers:

* every intra-repo markdown link points at a file that exists;
* every ``repro.x.y`` dotted reference and every ``*.py`` path reference
  in the docs resolves to an importable object / a file in the tree;
* every CLI invocation in a docs code block names a real subcommand and
  only real flags, and every subcommand is documented in the README.
"""

import glob
import importlib
import re
from argparse import _SubParsersAction
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", REPO / "DESIGN.md", REPO / "EXPERIMENTS.md",
     REPO / "ROADMAP.md"] + list((REPO / "docs").glob("*.md")))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
DOTTED_RE = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z_0-9]*)+)`")
PYFILE_RE = re.compile(r"`([A-Za-z_0-9./-]+\.py)`")
FENCE_RE = re.compile(r"```(?:bash|console|sh)\n(.*?)```", re.S)
CLI_RE = re.compile(
    r"(?:python -m repro|^[ \t]*repro)[ \t]+([a-z-]+)((?:[ \t]+\S+)*)",
    re.M)


def doc_ids(paths):
    return [str(p.relative_to(REPO)) for p in paths]


def subcommands():
    """{name: subparser} from the real CLI parser."""
    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, _SubParsersAction):
            return dict(action.choices)
    raise AssertionError("CLI parser has no subcommands")


class TestMarkdownLinks:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids(DOC_FILES))
    def test_intra_repo_links_resolve(self, doc):
        text = doc.read_text(encoding="utf-8")
        broken = []
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#")[0]
            if not path:
                continue
            if not (doc.parent / path).exists():
                broken.append(target)
        assert not broken, f"{doc.name}: broken links {broken}"


class TestCodeReferences:
    @staticmethod
    def _resolve_dotted(ref):
        """Import the longest module prefix, then walk attributes."""
        parts = ref.split(".")
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
            except ImportError:
                continue
            try:
                for attr in parts[cut:]:
                    obj = getattr(obj, attr)
            except AttributeError:
                return False
            return True
        return False

    @pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids(DOC_FILES))
    def test_dotted_references_importable(self, doc):
        text = doc.read_text(encoding="utf-8")
        bad = [ref for ref in set(DOTTED_RE.findall(text))
               if not self._resolve_dotted(ref)]
        assert not bad, f"{doc.name}: unresolvable references {sorted(bad)}"

    @pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids(DOC_FILES))
    def test_python_file_references_exist(self, doc):
        text = doc.read_text(encoding="utf-8")
        missing = []
        for ref in set(PYFILE_RE.findall(text)):
            if "/" in ref:
                candidates = [REPO / ref, REPO / "src" / ref,
                              REPO / "src" / "repro" / ref]
                if not any(c.exists() for c in candidates):
                    missing.append(ref)
            else:
                pattern = str(REPO / "**" / ref)
                if not glob.glob(pattern, recursive=True):
                    missing.append(ref)
        assert not missing, f"{doc.name}: missing files {sorted(missing)}"


class TestCliReferences:
    @pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids(DOC_FILES))
    def test_documented_commands_and_flags_exist(self, doc):
        subs = subcommands()
        text = doc.read_text(encoding="utf-8")
        problems = []
        for block in FENCE_RE.findall(text):
            for cmd, rest in CLI_RE.findall(block):
                if cmd not in subs:
                    problems.append(f"unknown subcommand {cmd!r}")
                    continue
                known = set(subs[cmd]._option_string_actions)
                for flag in re.findall(r"(--[a-z][a-z-]*)", rest):
                    if flag not in known:
                        problems.append(f"{cmd}: unknown flag {flag}")
        assert not problems, f"{doc.name}: {problems}"

    def test_readme_documents_every_subcommand(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        undocumented = [name for name in subcommands()
                        if not re.search(rf"repro {name}\b", readme)]
        assert not undocumented, \
            f"README.md does not document: {undocumented}"

    def test_docs_index_links_every_page(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        missing = [p.name for p in sorted((REPO / "docs").glob("*.md"))
                   if f"docs/{p.name}" not in readme]
        assert not missing, f"README.md docs index is missing: {missing}"

"""Tests for pipeline save/load."""

import numpy as np
import pytest

from repro.pipeline import HDFacePipeline
from repro.pipeline.serialization import load_pipeline, save_pipeline


@pytest.fixture(scope="module")
def fitted(face_data):
    xtr, ytr, _, _ = face_data
    pipe = HDFacePipeline(2, dim=1024, cell_size=8, magnitude="l1",
                          epochs=5, seed_or_rng=0)
    return pipe.fit(xtr, ytr)


class TestSave:
    def test_unfitted_raises(self, tmp_path):
        pipe = HDFacePipeline(2, dim=256, cell_size=8)
        with pytest.raises(RuntimeError):
            save_pipeline(pipe, tmp_path / "x.npz")

    def test_file_created(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_pipeline(fitted, path)
        assert path.exists() and path.stat().st_size > 0


class TestRoundtrip:
    def test_configuration_restored(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_pipeline(fitted, path)
        loaded = load_pipeline(path, seed_or_rng=0)
        assert loaded.dim == fitted.dim
        assert loaded.extractor.cell_size == fitted.extractor.cell_size
        assert loaded.extractor.magnitude == fitted.extractor.magnitude
        assert loaded.extractor.gamma == fitted.extractor.gamma

    def test_model_exactly_preserved(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_pipeline(fitted, path)
        loaded = load_pipeline(path, seed_or_rng=0)
        assert np.array_equal(loaded.classifier.class_hvs_,
                              fitted.classifier.class_hvs_)
        assert np.array_equal(loaded.extractor.codec.basis,
                              fitted.extractor.codec.basis)
        assert np.array_equal(loaded.extractor._pixel_table,
                              fitted.extractor._pixel_table)

    def test_predictions_statistically_identical(self, fitted, face_data, tmp_path):
        _, _, xte, yte = face_data
        path = tmp_path / "model.npz"
        save_pipeline(fitted, path)
        loaded = load_pipeline(path, seed_or_rng=1)
        orig_acc = fitted.score(xte, yte)
        load_acc = loaded.score(xte, yte)
        assert abs(orig_acc - load_acc) < 0.25  # extraction noise only

    def test_query_classification_identical(self, fitted, face_data, tmp_path):
        """Precomputed queries classify identically: the model is exact."""
        _, _, xte, _ = face_data
        queries = fitted.extract(xte[:6])
        path = tmp_path / "model.npz"
        save_pipeline(fitted, path)
        loaded = load_pipeline(path, seed_or_rng=2)
        assert (loaded.predict_queries(queries)
                == fitted.predict_queries(queries)).all()

    def test_version_check(self, fitted, tmp_path):
        path = tmp_path / "model.npz"
        save_pipeline(fitted, path)
        with np.load(path) as data:
            contents = {k: data[k] for k in data.files}
        contents["format_version"] = np.array(99)
        bad = tmp_path / "bad.npz"
        np.savez_compressed(bad, **contents)
        with pytest.raises(ValueError, match="unsupported"):
            load_pipeline(bad)

"""Tests for the end-to-end HDFace pipeline."""

import numpy as np
import pytest

from repro.pipeline.hdface import HDFacePipeline


@pytest.fixture(scope="module")
def fitted(face_data):
    xtr, ytr, _, _ = face_data
    pipe = HDFacePipeline(2, dim=2048, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0)
    return pipe.fit(xtr, ytr)


class TestFitPredict:
    def test_trains_above_chance(self, fitted, face_data):
        xtr, ytr, xte, yte = face_data
        assert fitted.score(xte, yte) > 0.7

    def test_predict_shape(self, fitted, face_data):
        _, _, xte, _ = face_data
        assert fitted.predict(xte[:3]).shape == (3,)

    def test_similarities_shape(self, fitted, face_data):
        _, _, xte, _ = face_data
        sims = fitted.similarities(xte[:4])
        assert sims.shape == (4, 2)

    def test_extract_gives_queries(self, fitted, face_data):
        _, _, xte, _ = face_data
        q = fitted.extract(xte[:2])
        assert q.shape == (2, 2048)

    def test_fit_queries_reuses_features(self, face_data):
        xtr, ytr, xte, yte = face_data
        a = HDFacePipeline(2, dim=2048, cell_size=8, magnitude="l1",
                           epochs=10, seed_or_rng=0)
        queries = a.extract(xtr)
        a.fit_queries(queries, ytr)
        assert a.score(xte, yte) > 0.7

    def test_model_override(self, fitted, face_data):
        _, _, xte, _ = face_data
        inverted = -fitted.classifier.class_hvs_[::-1]
        base = fitted.predict_queries(fitted.extract(xte))
        # swapping + negating both class vectors flips every decision
        flipped = fitted.predict_queries(fitted.extract(xte),
                                         model=fitted.classifier.class_hvs_[::-1])
        assert (base != flipped).mean() > 0.7
        del inverted

    def test_shared_dim(self):
        pipe = HDFacePipeline(2, dim=512, cell_size=8)
        assert pipe.dim == pipe.extractor.dim == 512


class TestConfigurationKnobs:
    def test_dimensionality_trend(self, face_data):
        """Fig. 5a's headline: accuracy improves with D."""
        xtr, ytr, xte, yte = face_data
        accs = {}
        for dim in (256, 2048):
            pipe = HDFacePipeline(2, dim=dim, cell_size=8, magnitude="l1",
                                  epochs=10, seed_or_rng=0).fit(xtr, ytr)
            accs[dim] = pipe.score(xte, yte)
        assert accs[2048] >= accs[256]

    def test_l2_mode_works(self, face_data):
        xtr, ytr, xte, yte = face_data
        pipe = HDFacePipeline(2, dim=1024, cell_size=8, magnitude="l2_scaled",
                              sqrt_iters=6, epochs=8, seed_or_rng=0).fit(xtr, ytr)
        assert pipe.score(xte, yte) > 0.6

    def test_injector_passthrough(self, fitted, face_data):
        _, _, xte, _ = face_data
        calls = []

        def injector(hv, stage):
            calls.append(stage)
            return hv

        fitted.predict(xte[:1], injector=injector)
        assert "pixels" in calls and "magnitude" in calls

    def test_multiclass_emotion(self, emotion_data):
        xtr, ytr, xte, yte = emotion_data
        # the 7-class task needs the full D=4k the paper recommends; at
        # lower dimensionality it sits near chance (the Fig. 5a story)
        pipe = HDFacePipeline(7, dim=4096, cell_size=8, magnitude="l1",
                              epochs=20, seed_or_rng=0).fit(xtr, ytr)
        assert pipe.score(xte, yte) > 1.5 / 7  # clearly above chance

"""Tests for the streaming subsystem: delta extraction, tracker, queue.

The equivalence properties here are the contract the whole streaming
design rests on: ``SharedFeatureEngine.delta_update`` must be *bitwise*
indistinguishable from throwing the cache away and re-extracting the new
frame, on both backends, for any dirty region - empty, partial or the
whole frame.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.hog_hd import HDHOGExtractor
from repro.pipeline.engine import SharedFeatureEngine
from repro.pipeline.multiscale import Detection, PyramidDetector
from repro.pipeline.stream import (
    FrameQueue,
    QueueClosedError,
    TemporalTracker,
    Track,
    VideoStreamDetector,
)

SIZE = 40
DIM = 128


@pytest.fixture(scope="module")
def extractor():
    return HDHOGExtractor(dim=DIM, cell_size=8, magnitude="l1", seed_or_rng=0)


def _queries(engine, scene):
    origins = [(y, x) for y in range(0, SIZE - 16 + 1, 8)
               for x in range(0, SIZE - 16 + 1, 8)]
    return engine.window_queries(scene, origins, window=16)


def _fields_arrays(fields):
    if hasattr(fields, "mag_packed"):
        return fields.mag_packed, fields.bins
    return fields.mag, fields.bins


rect = st.tuples(st.integers(0, SIZE), st.integers(0, SIZE),
                 st.integers(0, SIZE), st.integers(0, SIZE))


class TestDeltaEquivalence:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    @settings(max_examples=15, deadline=None)
    @given(r=rect, seed=st.integers(0, 2**16), value=st.floats(0.0, 1.0))
    def test_patched_engine_indistinguishable_from_fresh(
            self, extractor, backend, r, seed, value):
        ya, yb, xa, xb = r
        y0, y1 = sorted((ya, yb))
        x0, x1 = sorted((xa, xb))
        rng = np.random.default_rng(seed)
        prev = rng.random((SIZE, SIZE))
        scene = prev.copy()
        scene[y0:y1, x0:x1] = value  # empty when the rect has no area

        eng = SharedFeatureEngine(extractor, backend=backend)
        _queries(eng, prev)  # warm the cache with the previous frame
        stats = eng.delta_update(prev, scene)

        ref = SharedFeatureEngine(extractor, backend=backend)
        assert np.array_equal(_queries(eng, scene), _queries(ref, scene))
        for got, want in zip(_fields_arrays(eng.scene_fields(scene)),
                             _fields_arrays(ref.scene_fields(scene))):
            assert np.array_equal(got, want)

        changed = (prev != scene).any()
        if not changed:
            assert stats["mode"] == "reused"
        elif (y1 - y0) * (x1 - x0) == SIZE * SIZE:
            assert stats["mode"] == "full"
        else:
            assert stats["mode"] in ("patched", "full")
        if stats["mode"] == "patched":
            assert stats["dirty_pixels"] > 0

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_single_pixel_delta(self, extractor, backend):
        rng = np.random.default_rng(5)
        prev = rng.random((SIZE, SIZE))
        scene = prev.copy()
        scene[17, 23] = 1.0 - scene[17, 23]
        eng = SharedFeatureEngine(extractor, backend=backend)
        _queries(eng, prev)
        stats = eng.delta_update(prev, scene)
        assert stats["mode"] == "patched"
        assert stats["dirty_rect"] == (16, 19, 22, 25)  # 1px dilation
        ref = SharedFeatureEngine(extractor, backend=backend)
        assert np.array_equal(_queries(eng, scene), _queries(ref, scene))

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_cold_delta_falls_back_to_full(self, extractor, backend):
        rng = np.random.default_rng(6)
        prev, scene = rng.random((SIZE, SIZE)), rng.random((SIZE, SIZE))
        eng = SharedFeatureEngine(extractor, backend=backend)
        stats = eng.delta_update(prev, scene)  # prev never cached
        assert stats["mode"] == "full"
        ref = SharedFeatureEngine(extractor, backend=backend)
        assert np.array_equal(_queries(eng, scene), _queries(ref, scene))

    def test_keep_prev_leaves_old_entry_intact(self, extractor):
        rng = np.random.default_rng(7)
        prev = rng.random((SIZE, SIZE))
        scene = prev.copy()
        scene[10:20, 10:20] = 0.0
        eng = SharedFeatureEngine(extractor, cache_size=4)
        before = _queries(eng, prev).copy()
        eng.delta_update(prev, scene, keep_prev=True)
        assert np.array_equal(_queries(eng, prev), before)
        ref = SharedFeatureEngine(extractor)
        assert np.array_equal(_queries(eng, scene), _queries(ref, scene))

    def test_shape_mismatch_rejected(self, extractor):
        eng = SharedFeatureEngine(extractor)
        with pytest.raises(ValueError):
            eng.delta_update(np.zeros((16, 16)), np.zeros((24, 24)))


class TestDeltaScanEquivalence:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_scan_identical_after_delta(self, face_data, backend):
        from repro.pipeline import HDFacePipeline, SlidingWindowDetector
        xtr, ytr, _, _ = face_data
        pipe = HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
                              epochs=5, seed_or_rng=0).fit(xtr, ytr)
        rng = np.random.default_rng(11)
        prev = rng.random((48, 48))
        scene = prev.copy()
        scene[8:32, 12:36] = xtr[0].reshape(24, 24)

        det = SlidingWindowDetector(pipe, window=24, stride=8,
                                    backend=backend)
        det.scan(prev)
        det.engine.delta_update(prev, scene)
        patched = det.scan(scene)

        fresh = SlidingWindowDetector(pipe, window=24, stride=8,
                                      backend=backend)
        full = fresh.scan(scene)
        assert np.array_equal(patched.scores, full.scores)
        assert np.array_equal(patched.detections, full.detections)


class TestTemporalTracker:
    def test_confirmation_needs_min_hits(self):
        tr = TemporalTracker(min_hits=3, max_misses=1)
        d = Detection(10, 10, 24, 1.0)
        assert tr.update([d]) == []
        assert tr.update([d]) == []
        assert len(tr.update([d])) == 1

    def test_min_hits_one_confirms_immediately(self):
        tr = TemporalTracker(min_hits=1)
        assert len(tr.update([Detection(0, 0, 24, 0.5)])) == 1

    def test_score_smoothing_is_exponential(self):
        tr = TemporalTracker(min_hits=1, score_alpha=0.25)
        tr.update([Detection(0, 0, 24, 1.0)])
        (t,) = tr.update([Detection(1, 0, 24, 0.0)])
        assert t.score == pytest.approx(0.75)
        assert (t.y, t.x) == (1, 0)  # box snaps to the new detection

    def test_coasts_then_dies(self):
        tr = TemporalTracker(min_hits=1, max_misses=2)
        tr.update([Detection(0, 0, 24, 1.0)])
        assert len(tr.update([])) == 1   # miss 1: coasting, still reported
        assert len(tr.update([])) == 1   # miss 2
        assert tr.update([]) == []       # gone
        assert tr.tracks == []

    def test_match_resets_miss_counter(self):
        tr = TemporalTracker(min_hits=1, max_misses=1)
        d = Detection(0, 0, 24, 1.0)
        tr.update([d])
        tr.update([])
        (t,) = tr.update([d])
        assert t.misses == 0 and t.hits == 2

    def test_greedy_association_prefers_higher_iou(self):
        tr = TemporalTracker(min_hits=1, iou_threshold=0.1)
        tr.update([Detection(0, 0, 24, 1.0), Detection(40, 40, 24, 1.0)])
        ids = {(t.y, t.x): t.track_id for t in tr.active()}
        tr.update([Detection(41, 41, 24, 0.5), Detection(1, 1, 24, 0.5)])
        for t in tr.active():
            # each track stayed with its own (slightly moved) detection
            assert ids[(t.y - 1, t.x - 1)] == t.track_id

    def test_far_detection_spawns_new_track(self):
        tr = TemporalTracker(min_hits=1)
        tr.update([Detection(0, 0, 24, 1.0)])
        tracks = tr.update([Detection(0, 0, 24, 1.0),
                            Detection(100, 100, 24, 0.9)])
        assert len(tracks) == 2
        assert len({t.track_id for t in tracks}) == 2

    def test_track_box_protocol(self):
        t = Track(0, 2.0, 3.0, 10.0, 1.0)
        assert t.box == (2.0, 3.0, 12.0, 13.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TemporalTracker(iou_threshold=1.5)
        with pytest.raises(ValueError):
            TemporalTracker(score_alpha=0.0)
        with pytest.raises(ValueError):
            TemporalTracker(min_hits=0)
        with pytest.raises(ValueError):
            TemporalTracker(max_misses=-1)


class TestFrameQueue:
    def test_drop_oldest_counts_and_keeps_newest(self):
        q = FrameQueue(maxsize=2, policy="drop_oldest")
        for i in range(5):
            q.put(i)
        assert q.dropped == 3 and len(q) == 2
        assert q.get() == 3 and q.get() == 4

    def test_block_policy_times_out_when_full(self):
        q = FrameQueue(maxsize=1, policy="block")
        assert q.put(0) is True
        assert q.put(1, timeout=0.05) is False
        assert q.dropped == 0

    def test_get_times_out_when_empty(self):
        q = FrameQueue(maxsize=1)
        with pytest.raises(TimeoutError):
            q.get(timeout=0.05)

    def test_close_drains_then_signals_end(self):
        q = FrameQueue(maxsize=4)
        q.put("a")
        q.close()
        assert q.get() == "a"
        assert q.get() is None
        with pytest.raises(ValueError):
            q.put("b")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            FrameQueue(maxsize=0)
        with pytest.raises(ValueError):
            FrameQueue(policy="newest")


class TestFrameQueueShutdown:
    def test_put_after_close_raises_structured_error(self):
        q = FrameQueue(maxsize=2)
        q.close()
        with pytest.raises(QueueClosedError):
            q.put("late")
        assert len(q) == 0 and q.dropped == 0

    def test_close_is_idempotent_and_observable(self):
        q = FrameQueue(maxsize=2)
        assert q.closed is False
        q.close()
        q.close()
        assert q.closed is True

    def test_close_wakes_blocked_getter_with_none(self):
        import threading
        q = FrameQueue(maxsize=2)
        got = []
        t = threading.Thread(target=lambda: got.append(q.get()))
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive() and got == [None]

    def test_close_wakes_blocked_putter_with_error(self):
        import threading
        q = FrameQueue(maxsize=1, policy="block")
        q.put("fills the queue")
        caught = []

        def blocked_put():
            try:
                q.put("stuck")
            except QueueClosedError as err:
                caught.append(err)

        t = threading.Thread(target=blocked_put)
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive() and len(caught) == 1

    def test_concurrent_getters_all_released_after_close(self):
        import threading
        q = FrameQueue(maxsize=4)
        q.put("a")
        q.put("b")
        got = []
        lock = threading.Lock()

        def drain():
            while True:
                item = q.get()
                if item is None:
                    return
                with lock:
                    got.append(item)

        threads = [threading.Thread(target=drain) for _ in range(3)]
        for t in threads:
            t.start()
        q.close()
        for t in threads:
            t.join(timeout=5.0)
        assert all(not t.is_alive() for t in threads)
        assert sorted(got) == ["a", "b"]


class TestFrameQueueHammer:
    """Multi-producer stress: the fleet regime (N streams, one intake).

    The contract under load: no frame is lost or duplicated (every item
    is either consumed or its put observably failed), every producer
    blocked across close raises :class:`QueueClosedError` exactly once,
    and no thread is left wedged.
    """

    def test_many_producers_no_lost_or_duplicated_frames(self):
        import threading
        n_producers, per_producer = 6, 40
        q = FrameQueue(maxsize=3, policy="block")
        consumed = []

        def produce(pid):
            for i in range(per_producer):
                assert q.put((pid, i), timeout=10.0)

        def consume():
            while True:
                item = q.get(timeout=10.0)
                if item is None:
                    return
                consumed.append(item)

        consumer = threading.Thread(target=consume)
        consumer.start()
        producers = [threading.Thread(target=produce, args=(p,))
                     for p in range(n_producers)]
        for t in producers:
            t.start()
        for t in producers:
            t.join(timeout=30.0)
        assert all(not t.is_alive() for t in producers)
        q.close()
        consumer.join(timeout=30.0)
        assert not consumer.is_alive()
        assert q.dropped == 0
        # exactly-once delivery of every frame, per-producer order intact
        assert len(consumed) == n_producers * per_producer
        assert len(set(consumed)) == len(consumed)
        for p in range(n_producers):
            mine = [i for pid, i in consumed if pid == p]
            assert mine == sorted(mine)

    def test_close_under_load_fails_each_blocked_putter_once(self):
        import threading
        n_producers = 5
        q = FrameQueue(maxsize=1, policy="block")
        q.put("plug")                       # every producer blocks
        started = threading.Barrier(n_producers + 1)
        outcomes = []
        lock = threading.Lock()

        def produce(pid):
            started.wait(timeout=10.0)
            errors = 0
            try:
                ok = q.put(pid, timeout=10.0)
            except QueueClosedError:
                errors += 1
                ok = None
            with lock:
                outcomes.append((pid, ok, errors))

        producers = [threading.Thread(target=produce, args=(p,))
                     for p in range(n_producers)]
        for t in producers:
            t.start()
        started.wait(timeout=10.0)
        time.sleep(0.1)                     # let every putter block
        q.close()
        for t in producers:
            t.join(timeout=10.0)
        assert all(not t.is_alive() for t in producers)
        # every producer failed by exception, exactly once, no timeouts
        assert sorted(p for p, _, _ in outcomes) == list(range(n_producers))
        assert all(ok is None and errors == 1 for _, ok, errors in outcomes)
        # the pre-close frame is still drainable, then end-of-stream
        assert q.get(timeout=1.0) == "plug"
        assert q.get(timeout=1.0) is None

    def test_producers_and_consumers_race_close(self):
        import threading
        q = FrameQueue(maxsize=2, policy="block")
        consumed, refused = [], []
        lock = threading.Lock()

        def produce(pid):
            i = 0
            while True:
                try:
                    if not q.put((pid, i), timeout=0.05):
                        continue            # full: retry, frame not lost
                except QueueClosedError:
                    with lock:
                        refused.append((pid, i))
                    return
                i += 1

        def consume():
            while True:
                try:
                    item = q.get(timeout=0.05)
                except TimeoutError:
                    continue
                if item is None:
                    return
                with lock:
                    consumed.append(item)

        producers = [threading.Thread(target=produce, args=(p,))
                     for p in range(4)]
        consumers = [threading.Thread(target=consume) for _ in range(2)]
        for t in producers + consumers:
            t.start()
        time.sleep(0.3)
        q.close()
        for t in producers + consumers:
            t.join(timeout=10.0)
        assert all(not t.is_alive() for t in producers + consumers)
        # each producer stopped at its refused frame; everything it put
        # before that was delivered downstream exactly once
        assert len(refused) == 4
        assert len(set(consumed)) == len(consumed)
        for pid, stop in refused:
            mine = sorted(i for p, i in consumed if p == pid)
            assert mine == list(range(stop))


@pytest.fixture(scope="module")
def stream_setup(face_data):
    from repro.datasets.synth import moving_face_sequence
    from repro.pipeline import HDFacePipeline
    xtr, ytr, _, _ = face_data
    pipe = HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
                          epochs=5, seed_or_rng=0).fit(xtr, ytr)
    frames, truth = moving_face_sequence(48, 5, window=24, step=2,
                                         seed_or_rng=3)
    return pipe, frames, truth


def _make_stream(pipe, backend="dense", **kwargs):
    from repro.pipeline import SlidingWindowDetector
    det = SlidingWindowDetector(pipe, window=24, stride=8, backend=backend)
    return VideoStreamDetector(PyramidDetector(det, score_threshold=0.0),
                               **kwargs)


class TestVideoStreamDetector:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_incremental_matches_full_detections(self, stream_setup, backend):
        pipe, frames, _ = stream_setup
        inc = _make_stream(pipe, backend)
        full = _make_stream(pipe, backend, incremental=False)
        for a, b in zip(inc.run(frames), full.run(frames)):
            assert a.detections == b.detections

    def test_delta_path_engages_after_first_frame(self, stream_setup):
        pipe, frames, _ = stream_setup
        stream = _make_stream(pipe)
        results = list(stream.run(frames))
        assert results[0].reuse["mode"] == "cold"
        assert all(r.reuse["mode"] == "delta" for r in results[1:])
        assert all(r.reuse["patched_levels"] > 0 for r in results[1:])
        stats = stream.stats()
        assert stats["frames"] == len(frames)
        assert 0.0 < stats["reused_pixel_fraction"] < 1.0
        assert stats["delta_patched"] > 0

    def test_async_path_processes_all_when_blocking(self, stream_setup):
        pipe, frames, _ = stream_setup
        stream = _make_stream(pipe, queue_size=2, policy="block")
        stream.start()
        for f in frames:
            stream.submit(f)
        results = stream.stop()
        assert len(results) == len(frames)
        assert stream.queue.dropped == 0
        assert [r.index for r in results] == list(range(len(frames)))

    def test_requires_shared_engine(self, stream_setup):
        from repro.pipeline import SlidingWindowDetector
        pipe, _, _ = stream_setup
        det = SlidingWindowDetector(pipe, window=24, engine="legacy")
        with pytest.raises(ValueError):
            VideoStreamDetector(PyramidDetector(det))
        with pytest.raises(ValueError):
            VideoStreamDetector(det)  # not a PyramidDetector

    def test_submit_after_stop_rejected_and_counted(self, stream_setup):
        pipe, frames, _ = stream_setup
        stream = _make_stream(pipe, queue_size=2, policy="block")
        stream.start()
        assert stream.submit(frames[0]) is True
        stream.stop()
        # the shutdown race: a still-running producer sees False, not an
        # exception, and the rejection is accounted
        assert stream.submit(frames[1]) is False
        assert stream.rejected == 1
        assert stream.frames_in == 1

    def test_stop_drains_frames_submitted_before_close(self, stream_setup):
        pipe, frames, _ = stream_setup
        stream = _make_stream(pipe, queue_size=len(frames), policy="block")
        for f in frames:  # queued before the consumer even starts
            stream.submit(f)
        stream.start()
        results = stream.stop()
        assert len(results) == len(frames)

    def test_stop_twice_is_safe(self, stream_setup):
        pipe, frames, _ = stream_setup
        stream = _make_stream(pipe)
        stream.start()
        stream.submit(frames[0])
        first = stream.stop()
        assert stream.stop() is first

    def test_tracker_follows_the_moving_face(self, stream_setup):
        pipe, frames, truth = stream_setup
        stream = _make_stream(
            pipe, tracker=TemporalTracker(min_hits=2, max_misses=2))
        last = None
        for result, (ty, tx, w) in zip(stream.run(frames), truth):
            if result.tracks:
                last = (result.tracks[0], Detection(ty, tx, w, 1.0))
        assert last is not None, "no track ever confirmed"
        from repro.pipeline.multiscale import iou
        assert iou(*last) > 0.3

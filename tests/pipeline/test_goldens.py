"""Golden regression tests for the detection stack.

Small committed JSON fixtures pin the *numeric* output of the two
user-facing detection entry points on a fixed seeded scene:

* ``SlidingWindowDetector.scan`` - the per-window score grid and the
  boolean detection map;
* ``PyramidDetector.detect`` - the NMS-filtered detection boxes/scores;

on both the ``dense`` and ``packed`` backends.  Any change that shifts a
score by more than ``ATOL`` (or moves/adds/drops a box) fails here, so
refactors of the extractor, engine, NMS or classifier must either be
exactly output-preserving or consciously regenerate the fixtures.

Regenerating (after an *intentional* behavior change)::

    PYTHONPATH=src python -m tests.pipeline.test_goldens

rewrites every JSON under ``tests/pipeline/goldens/``; review the diff and
commit it with the change that caused it.  The same builders produce the
fixtures and the test expectations, so the two cannot drift apart.
"""

import json
from pathlib import Path

import numpy as np
import pytest

pytestmark = pytest.mark.tier1

GOLDEN_DIR = Path(__file__).parent / "goldens"
BACKENDS = ("dense", "packed")
# scores: identical code must reproduce them to float noise (BLAS
# reassociation across environments), not bit-for-bit; boxes: exact.
ATOL = 1e-6


def _pipeline():
    from repro.datasets import make_face_dataset
    from repro.pipeline import HDFacePipeline
    xtr, ytr = make_face_dataset(48, size=24, seed_or_rng=0)
    return HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
                          epochs=5, seed_or_rng=0).fit(xtr, ytr)


def _scan_case(pipe, backend):
    from repro.pipeline import SlidingWindowDetector, make_scene
    scene, _ = make_scene(48, [(8, 16)], window=24, seed_or_rng=3)
    det = SlidingWindowDetector(pipe, window=24, stride=8, backend=backend)
    result = det.scan(scene)
    return {
        "scores": [[float(s) for s in row] for row in result.scores],
        "detections": [[bool(d) for d in row] for row in result.detections],
    }


def _detect_case(pipe, backend):
    from repro.pipeline import PyramidDetector, SlidingWindowDetector, make_scene
    scene, _ = make_scene(64, [(12, 20)], window=24, seed_or_rng=9)
    det = SlidingWindowDetector(pipe, window=24, stride=8, backend=backend)
    pyr = PyramidDetector(det, scale_step=1.5, score_threshold=0.0)
    return {
        "detections": [
            {"y": d.y, "x": d.x, "size": d.size, "score": float(d.score)}
            for d in pyr.detect(scene)
        ],
    }


def build_cases():
    """Case name -> freshly computed payload (used by test and regen)."""
    pipe = _pipeline()
    cases = {}
    for backend in BACKENDS:
        cases[f"scan_{backend}"] = _scan_case(pipe, backend)
        cases[f"detect_{backend}"] = _detect_case(pipe, backend)
    return cases


@pytest.fixture(scope="module")
def computed():
    return build_cases()


def _golden(name):
    path = GOLDEN_DIR / f"{name}.json"
    if not path.exists():
        pytest.fail(f"missing golden {path}; regenerate with "
                    f"PYTHONPATH=src python -m tests.pipeline.test_goldens")
    with open(path) as fh:
        return json.load(fh)


@pytest.mark.parametrize("backend", BACKENDS)
class TestScanGoldens:
    def test_scores_match(self, computed, backend):
        got = np.asarray(computed[f"scan_{backend}"]["scores"])
        want = np.asarray(_golden(f"scan_{backend}")["scores"])
        assert got.shape == want.shape
        np.testing.assert_allclose(got, want, rtol=0, atol=ATOL)

    def test_detection_map_matches(self, computed, backend):
        got = computed[f"scan_{backend}"]["detections"]
        want = _golden(f"scan_{backend}")["detections"]
        assert got == want


@pytest.mark.parametrize("backend", BACKENDS)
class TestDetectGoldens:
    def test_boxes_and_scores_match(self, computed, backend):
        got = computed[f"detect_{backend}"]["detections"]
        want = _golden(f"detect_{backend}")["detections"]
        assert len(got) == len(want), (
            f"{backend}: {len(got)} detections vs golden {len(want)}")
        for i, (g, w) in enumerate(zip(got, want)):
            assert (g["y"], g["x"], g["size"]) == (w["y"], w["x"], w["size"]), (
                f"{backend} detection {i} box drifted")
            assert abs(g["score"] - w["score"]) <= ATOL, (
                f"{backend} detection {i} score drifted: "
                f"{g['score']} vs {w['score']}")


def main():  # pragma: no cover - the documented regeneration entry point
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, payload in build_cases().items():
        path = GOLDEN_DIR / f"{name}.json"
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    main()

"""Tests for the sliding-window detector and scene composition (Fig. 6)."""

import numpy as np
import pytest

from repro.pipeline.detector import SlidingWindowDetector, make_scene
from repro.pipeline.hdface import HDFacePipeline


@pytest.fixture(scope="module")
def face_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=2048, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


class TestMakeScene:
    def test_scene_shape_and_truth(self):
        scene, truth = make_scene(72, [(0, 0), (48, 48)], window=24,
                                  seed_or_rng=0)
        assert scene.shape == (72, 72)
        assert truth == [(0, 0, 24), (48, 48, 24)]

    def test_face_does_not_fit_raises(self):
        with pytest.raises(ValueError):
            make_scene(48, [(40, 40)], window=24)

    def test_faces_pasted(self):
        scene_with, _ = make_scene(72, [(24, 24)], window=24, seed_or_rng=0)
        scene_without, _ = make_scene(72, [], window=24, seed_or_rng=0)
        region = (slice(24, 48), slice(24, 48))
        assert not np.allclose(scene_with[region], scene_without[region])

    def test_range(self):
        scene, _ = make_scene(48, [(12, 12)], window=24, seed_or_rng=1)
        assert scene.min() >= 0.0 and scene.max() <= 1.0


class TestWindows:
    def test_window_grid(self, face_pipe):
        det = SlidingWindowDetector(face_pipe, window=24, stride=12)
        crops, grid = det.windows(np.zeros((48, 48)))
        assert grid == (3, 3)
        assert crops.shape == (9, 24, 24)

    def test_stride_defaults_to_half_window(self, face_pipe):
        det = SlidingWindowDetector(face_pipe, window=24)
        assert det.stride == 12

    def test_scene_too_small(self, face_pipe):
        det = SlidingWindowDetector(face_pipe, window=24)
        with pytest.raises(ValueError):
            det.windows(np.zeros((16, 16)))


class TestScan:
    def test_detection_map_structure(self, face_pipe):
        scene, _ = make_scene(48, [(12, 12)], window=24, seed_or_rng=0)
        det = SlidingWindowDetector(face_pipe, window=24, stride=12)
        result = det.scan(scene)
        assert result.scores.shape == result.detections.shape == (3, 3)
        assert result.detections.dtype == bool

    def test_face_window_scores_higher_than_background(self, face_pipe):
        scene, _ = make_scene(72, [(24, 24)], window=24, seed_or_rng=0)
        det = SlidingWindowDetector(face_pipe, window=24, stride=24)
        result = det.scan(scene)
        face_score = result.scores[1, 1]
        background = np.delete(result.scores.ravel(), 4)
        assert face_score > background.mean()

    def test_window_origin(self, face_pipe):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8)
        result_origin = (2 * 8, 3 * 8)
        scene = np.zeros((48, 48))
        scan = det.scan(scene)
        del scan
        assert det.stride == 8
        from repro.pipeline.detector import DetectionMap
        dm = DetectionMap(np.zeros((4, 4)), np.zeros((4, 4), bool), 8, 24)
        assert dm.window_origin(2, 3) == result_origin

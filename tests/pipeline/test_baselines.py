"""Tests for the HOG->{DNN, SVM, encoded HDC} baseline pipelines."""

import numpy as np
import pytest

from repro.pipeline.baselines import HOGPipeline


class TestConstruction:
    def test_unknown_model(self):
        with pytest.raises(ValueError):
            HOGPipeline("forest", 2, image_size=24)

    def test_feature_count_from_image_size(self):
        pipe = HOGPipeline("svm", 2, image_size=24, cell_size=8, n_bins=8)
        assert pipe.n_features == 3 * 3 * 8

    def test_encoder_only_for_hdc(self):
        assert HOGPipeline("svm", 2, image_size=24).encoder is None
        assert HOGPipeline("hdc", 2, image_size=24, dim=512).encoder is not None


@pytest.mark.parametrize("model", ["svm", "dnn", "hdc"])
class TestAllBackends:
    def test_fit_predict_score(self, model, face_data):
        xtr, ytr, xte, yte = face_data
        kwargs = {"hidden": (32, 32)} if model == "dnn" else {}
        if model == "hdc":
            kwargs["dim"] = 2048
        pipe = HOGPipeline(model, 2, image_size=24, seed_or_rng=0, **kwargs)
        pipe.fit(xtr, ytr)
        assert pipe.score(xte, yte) > 0.75
        assert pipe.predict(xte[:3]).shape == (3,)

    def test_fit_features_path(self, model, face_data):
        xtr, ytr, xte, yte = face_data
        kwargs = {"hidden": (32, 32)} if model == "dnn" else {}
        if model == "hdc":
            kwargs["dim"] = 2048
        pipe = HOGPipeline(model, 2, image_size=24, seed_or_rng=0, **kwargs)
        pipe.fit_features(pipe.features(xtr), ytr)
        assert pipe.score(xte, yte) > 0.7


class TestFeatureSharing:
    def test_features_identical_across_backends(self, face_data):
        """Paper Sec. 6.2: all learners see the same HOG features."""
        xtr, _, _, _ = face_data
        a = HOGPipeline("svm", 2, image_size=24, seed_or_rng=0)
        b = HOGPipeline("dnn", 2, image_size=24, seed_or_rng=0, hidden=(8,))
        assert np.allclose(a.features(xtr[:4]), b.features(xtr[:4]))

    def test_injector_reaches_hog(self, face_data):
        xtr, _, _, _ = face_data
        pipe = HOGPipeline("svm", 2, image_size=24, seed_or_rng=0)
        stages = []
        pipe.features(xtr[:1], injector=lambda a, s: stages.append(s) or a)
        assert "magnitude" in stages

    def test_hdc_encoding_changes_dimensionality(self, face_data):
        xtr, _, _, _ = face_data
        pipe = HOGPipeline("hdc", 2, image_size=24, dim=1024, seed_or_rng=0)
        assert pipe.extract(xtr[:2]).shape == (2, 1024)

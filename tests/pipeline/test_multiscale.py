"""Tests for the multi-scale pyramid detector and NMS."""

import numpy as np
import pytest

from repro.pipeline.multiscale import (
    Detection,
    PyramidDetector,
    downscale,
    iou,
    non_max_suppression,
    pyramid,
)


class TestDownscale:
    def test_identity_factor(self):
        img = np.random.default_rng(0).random((16, 16))
        assert np.allclose(downscale(img, 1.0), img)

    def test_halving(self):
        img = np.ones((32, 32))
        out = downscale(img, 2.0)
        assert out.shape == (16, 16)
        assert np.allclose(out, 1.0)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            downscale(np.zeros((8, 8)), 0.5)

    def test_preserves_structure(self):
        yy, xx = np.mgrid[0:32, 0:32]
        img = (xx >= 16).astype(float)
        out = downscale(img, 2.0)
        assert out[:, :6].mean() < 0.2 and out[:, -6:].mean() > 0.8


class TestPyramid:
    def test_levels_shrink_geometrically(self):
        levels = list(pyramid(np.zeros((64, 64)), scale_step=2.0, min_size=16))
        sizes = [lvl.shape[0] for lvl, _ in levels]
        assert sizes == [64, 32, 16]

    def test_factors(self):
        factors = [f for _, f in pyramid(np.zeros((64, 64)), 2.0, 16)]
        assert factors == [1.0, 2.0, 4.0]

    def test_bad_step(self):
        with pytest.raises(ValueError):
            list(pyramid(np.zeros((8, 8)), 1.0))


class TestIoU:
    def test_identical_boxes(self):
        d = Detection(0, 0, 10, 1.0)
        assert iou(d, d) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou(Detection(0, 0, 10, 1.0), Detection(20, 20, 10, 1.0)) == 0.0

    def test_half_overlap(self):
        a = Detection(0, 0, 10, 1.0)
        b = Detection(0, 5, 10, 1.0)
        assert iou(a, b) == pytest.approx(50 / 150)

    def test_zero_size_boxes_give_zero_not_nan(self):
        """Two coincident zero-area boxes hit the 0/0 guard."""
        a = Detection(5, 5, 0, 1.0)
        assert iou(a, a) == 0.0
        assert iou(a, Detection(5, 5, 10, 1.0)) == 0.0

    def test_fully_nested_boxes(self):
        outer = Detection(0, 0, 20, 1.0)
        inner = Detection(5, 5, 10, 0.5)
        assert iou(outer, inner) == pytest.approx(100 / 400)
        assert iou(inner, outer) == pytest.approx(100 / 400)


class TestNMS:
    def test_keeps_best_of_cluster(self):
        dets = [Detection(0, 0, 10, 0.5), Detection(1, 1, 10, 0.9),
                Detection(2, 0, 10, 0.3)]
        kept = non_max_suppression(dets, iou_threshold=0.3)
        assert len(kept) == 1 and kept[0].score == 0.9

    def test_keeps_distant_detections(self):
        dets = [Detection(0, 0, 10, 0.5), Detection(50, 50, 10, 0.4)]
        assert len(non_max_suppression(dets)) == 2

    def test_empty_input(self):
        assert non_max_suppression([]) == []

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            non_max_suppression([], iou_threshold=2.0)

    def test_sorted_by_score(self):
        dets = [Detection(0, 0, 5, 0.2), Detection(50, 0, 5, 0.9),
                Detection(0, 50, 5, 0.5)]
        kept = non_max_suppression(dets)
        assert [d.score for d in kept] == [0.9, 0.5, 0.2]

    def test_exact_ties_keep_input_order(self):
        """Equal scores must not reshuffle: the sort is stable."""
        dets = [Detection(0, 0, 5, 0.5), Detection(100, 0, 5, 0.5),
                Detection(0, 100, 5, 0.5)]
        assert non_max_suppression(dets) == dets

    def test_tied_overlapping_keeps_first(self):
        first = Detection(0, 0, 10, 0.5)
        second = Detection(1, 1, 10, 0.5)
        assert non_max_suppression([first, second], 0.3) == [first]

    def test_zero_size_detections_all_survive(self):
        """Zero-area boxes never overlap anything (IoU 0, not 0/0)."""
        dets = [Detection(5, 5, 0, 0.9), Detection(5, 5, 0, 0.8),
                Detection(5, 5, 10, 0.7)]
        assert non_max_suppression(dets, 0.3) == dets

    def test_fully_nested_box_suppressed_above_threshold(self):
        outer = Detection(0, 0, 20, 0.9)
        inner = Detection(5, 5, 10, 0.8)  # IoU 0.25 with outer
        assert non_max_suppression([outer, inner], 0.2) == [outer]
        assert non_max_suppression([outer, inner], 0.3) == [outer, inner]


def _greedy_reference_nms(detections, iou_threshold=0.3):
    """The pre-vectorization O(n^2) list-rebuild loop, kept as the oracle."""
    remaining = sorted(detections, key=lambda d: d.score, reverse=True)
    kept = []
    while remaining:
        best = remaining.pop(0)
        kept.append(best)
        remaining = [d for d in remaining if iou(best, d) < iou_threshold]
    return kept


class TestNMSMatchesGreedyReference:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("threshold", [0.1, 0.3, 0.6])
    def test_random_inputs(self, seed, threshold):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        # quantized coords/sizes so overlaps and exact score ties occur
        dets = [Detection(float(rng.integers(0, 12) * 4),
                          float(rng.integers(0, 12) * 4),
                          float(rng.integers(0, 4) * 8),
                          float(rng.integers(0, 6)) / 4.0)
                for _ in range(n)]
        assert (non_max_suppression(dets, threshold)
                == _greedy_reference_nms(dets, threshold))


class TestPyramidDetector:
    def test_finds_larger_than_window_face(self, face_data):
        """A face twice the window size is found via the pyramid."""
        from repro.pipeline import HDFacePipeline, SlidingWindowDetector, make_scene
        xtr, ytr, _, _ = face_data  # 24x24 training faces
        pipe = HDFacePipeline(2, dim=2048, cell_size=8, magnitude="l1",
                              epochs=10, seed_or_rng=0).fit(xtr, ytr)
        base = SlidingWindowDetector(pipe, window=24, stride=12)
        # scene with one 48x48 face (2x the window)
        scene, _ = make_scene(96, [(24, 24)], window=48, seed_or_rng=3)
        detector = PyramidDetector(base, scale_step=2.0, score_threshold=0.0)
        detections = detector.detect(scene)
        assert detections, "no detections at any scale"
        big = [d for d in detections if d.size > 24]
        assert big, "pyramid produced no up-scaled detections"
        # the best large detection overlaps the true face region
        truth = Detection(24, 24, 48, 1.0)
        assert max(iou(d, truth) for d in big) > 0.25


class TestPyramidWorkers:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_workers_do_not_change_detections(self, face_data, backend):
        from repro.pipeline import HDFacePipeline, SlidingWindowDetector, make_scene
        xtr, ytr, _, _ = face_data
        pipe = HDFacePipeline(2, dim=1024, cell_size=8, magnitude="l1",
                              epochs=5, seed_or_rng=0).fit(xtr, ytr)
        scene, _ = make_scene(72, [(12, 12)], window=24, seed_or_rng=5)

        def run(workers):
            det = SlidingWindowDetector(pipe, window=24, stride=12,
                                        engine="shared", backend=backend)
            pyr = PyramidDetector(det, scale_step=1.5, workers=workers)
            return pyr.detect(scene)

        assert run(1) == run(4)

    def test_bad_workers_raises(self):
        with pytest.raises(ValueError):
            PyramidDetector(object(), workers=0)

"""Tests for the early-exit cascade scanner (pipeline/cascade.py).

The load-bearing properties: prefix assembly is bitwise the matching slice
of the full query, block distances partition the full Hamming distance,
an uncalibrated full-grid cascade reproduces the packed scan bitwise, and
a calibrated cascade never loses a detection the full model makes on its
calibration distribution beyond the stated false-negative budget.
"""

import numpy as np
import pytest

from repro.core.hypervector import packed_words
from repro.pipeline.cascade import (
    FLOOR_SCORE,
    CascadeCalibration,
    CascadeCalibrator,
    CascadeScanner,
    CascadeStage,
    default_word_schedule,
    hoeffding_threshold,
)
from repro.pipeline.detector import SlidingWindowDetector, make_scene
from repro.pipeline.hdface import HDFacePipeline
from repro.profiling import Profiler

DIM = 1024
WINDOW = 24


@pytest.fixture(scope="module")
def face_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="module")
def scene():
    scene, _ = make_scene(72, [(0, 0), (48, 24)], window=WINDOW,
                          seed_or_rng=7)
    return scene


def packed_detector(pipe, **kw):
    return SlidingWindowDetector(pipe, window=WINDOW, stride=6,
                                 backend="packed", **kw)


class TestWordSchedule:
    def test_geometric_schedule(self):
        assert default_word_schedule(64) == [4, 16, 64]
        assert default_word_schedule(32) == [2, 8, 32]

    def test_narrow_model_single_stage(self):
        assert default_word_schedule(1) == [1]
        assert default_word_schedule(4) == [4]

    def test_bad_total_raises(self):
        with pytest.raises(ValueError):
            default_word_schedule(0)


class TestHoeffdingThreshold:
    def test_negative_and_tightens_with_n(self):
        t1 = hoeffding_threshold(256, 0.01)
        t2 = hoeffding_threshold(4096, 0.01)
        assert t1 < t2 < 0.0

    def test_tightens_with_budget(self):
        # a smaller fn budget tolerates less undershoot -> looser bound
        assert hoeffding_threshold(1024, 0.001) < \
            hoeffding_threshold(1024, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            hoeffding_threshold(0, 0.01)
        with pytest.raises(ValueError):
            hoeffding_threshold(64, 0.0)
        with pytest.raises(ValueError):
            hoeffding_threshold(64, 1.0)


class TestCascadeStage:
    def test_positive_threshold_rejected(self):
        with pytest.raises(ValueError):
            CascadeStage(4, 0.1)

    def test_zero_words_rejected(self):
        with pytest.raises(ValueError):
            CascadeStage(0)


class TestCalibrationRoundTrip:
    def test_save_load(self, tmp_path):
        cal = CascadeCalibration(
            dim=1024, face_class=1, fn_budget=0.01, method="empirical",
            stages=(CascadeStage(4, -0.05), CascadeStage(16, 0.0)),
            escalation=(0.25, 0.25), windows=200, accepted=12)
        path = tmp_path / "cal.json"
        cal.save(path)
        assert CascadeCalibration.load(path) == cal


class TestPrefixAssembly:
    def test_prefix_block_is_slice_of_full_query(self, face_pipe, scene):
        det = packed_detector(face_pipe)
        origins, _ = det.origins(scene.shape)
        full = det.engine.window_queries(scene, origins, WINDOW)
        for w0, w1 in [(0, 4), (4, 9), (9, packed_words(DIM))]:
            block = det.engine.window_queries_prefix(
                scene, origins, WINDOW, w0, w1)
            assert (block == full[:, w0:w1]).all()

    def test_counters_surface_in_cache_info(self, face_pipe, scene):
        det = packed_detector(face_pipe)
        origins, _ = det.origins(scene.shape)
        det.engine.window_queries_prefix(scene, origins, WINDOW, 0, 4)
        info = det.engine.cache_info()
        assert info["prefix_assembles"] == 1
        assert info["prefix_windows"] == len(origins)
        assert info["prefix_words"] == 4 * len(origins)

    def test_dense_backend_rejected(self, face_pipe, scene):
        det = SlidingWindowDetector(face_pipe, window=WINDOW, stride=6)
        origins, _ = det.origins(scene.shape)
        with pytest.raises(ValueError, match="packed"):
            det.engine.window_queries_prefix(scene, origins, WINDOW, 0, 4)


class TestDistanceBlock:
    def test_blocks_partition_full_distance(self, face_pipe, scene):
        det = packed_detector(face_pipe)
        model = det.packed_model()
        origins, _ = det.origins(scene.shape)
        q = det.engine.window_queries(scene, origins, WINDOW)
        total = model.distances(q)
        cuts = [0, 3, 7, model.n_words]
        acc = sum(model.distance_block(q, a, b)
                  for a, b in zip(cuts, cuts[1:]))
        assert (acc == total).all()


class TestCascadeEquivalence:
    def test_full_grid_cascade_matches_packed_scan(self, face_pipe, scene):
        plain = packed_detector(face_pipe)
        cascade = packed_detector(face_pipe, cascade={"seed_factor": 1})
        ref = plain.scan(scene)
        out = cascade.scan(scene)
        # survivors carry the exact full-model margin; rejected windows
        # carry a <= 0 prefix margin, so the detection sets are identical
        assert (out.detections == ref.detections).all()
        assert np.allclose(out.scores[out.detections],
                           ref.scores[ref.detections])
        assert (out.scores[~out.detections] <= 0.0).all()

    def test_calibrated_seeded_cascade_keeps_detections(self, face_pipe,
                                                        scene):
        plain = packed_detector(face_pipe)
        cal_scenes = [make_scene(72, [(24, 24)], window=WINDOW,
                                 seed_or_rng=s)[0] for s in (11, 12)]
        cal = CascadeCalibrator(plain, fn_budget=0.05).calibrate(cal_scenes)
        det = packed_detector(face_pipe, cascade=cal)
        ref = plain.scan(scene)
        out = det.scan(scene)
        # rejection can only remove detections, never invent them: every
        # rejected/skipped window's score stays at or below zero
        assert not (out.detections & ~ref.detections).any()
        assert (out.scores[~out.detections] <= 0.0).all()
        # the strongest seed-grid detection must survive the cascade with
        # its exact full-model margin (seed grid = every other index plus
        # the last row/column at seed_factor=2)
        n_wy, n_wx = ref.scores.shape
        sy = np.unique(np.append(np.arange(0, n_wy, 2), n_wy - 1))
        sx = np.unique(np.append(np.arange(0, n_wx, 2), n_wx - 1))
        on_seed = np.zeros_like(ref.detections)
        on_seed[np.ix_(sy, sx)] = True
        masked = np.where(on_seed, ref.scores, -np.inf)
        iy, ix = np.unravel_index(np.argmax(masked), masked.shape)
        assert ref.detections[iy, ix]  # the fixture scene has one
        assert out.detections[iy, ix]
        assert out.scores[iy, ix] == ref.scores[iy, ix]

    def test_stats_and_floor(self, face_pipe, scene):
        det = packed_detector(face_pipe, cascade={"seed_factor": 2,
                                                  "refine_band": 0.25})
        out = det.scan(scene)
        stats = det.cascade_scanner().last_stats
        assert stats["windows"] == out.scores.size
        assert stats["seeded"] + stats["refined"] + stats["skipped"] == \
            stats["windows"]
        n_floor = int((out.scores == FLOOR_SCORE).sum())
        assert n_floor == stats["skipped"]
        evaluated = stats["stages"][0]["evaluated"]
        assert evaluated == stats["seeded"] + stats["refined"]

    def test_max_words_matches_truncated_model(self, face_pipe, scene):
        plain = packed_detector(face_pipe)
        det = packed_detector(face_pipe, cascade={"seed_factor": 1})
        cap = 8
        ref = plain.scan(scene, max_words=cap)  # truncated-model path
        out = det.scan(scene, max_words=cap)
        assert np.allclose(out.scores, ref.scores)


class TestCalibrator:
    def test_fn_budget_holds_on_calibration_data(self, face_pipe):
        det = packed_detector(face_pipe)
        scenes = [make_scene(72, [(0, 24)], window=WINDOW, seed_or_rng=s)[0]
                  for s in range(20, 24)]
        budget = 0.1
        cal = CascadeCalibrator(det, fn_budget=budget).calibrate(scenes)
        assert cal.windows > 0 and cal.accepted > 0
        # replay: count accepted windows each non-final stage would drop
        model = det.packed_model()
        dropped = np.zeros(len(cal.stages) - 1)
        total_acc = 0
        for scene in scenes:
            origins, _ = det.origins(scene.shape)
            q = det.engine.window_queries(scene, origins, WINDOW)
            acc = np.zeros((len(origins), model.n_classes), np.int64)
            w_prev = 0
            margins = {}
            for si, st in enumerate(cal.stages):
                acc += model.distance_block(q, w_prev, st.words)
                pdim = min(64 * st.words, DIM)
                sims = 1.0 - (2.0 / pdim) * acc
                margins[si] = sims[:, 1] - np.delete(sims, 1, axis=1).max(1)
                w_prev = st.words
            accepted = margins[len(cal.stages) - 1] > 0
            total_acc += int(accepted.sum())
            for si, st in enumerate(cal.stages[:-1]):
                dropped[si] += int((accepted
                                    & (margins[si] < st.threshold)).sum())
        tol = budget + 1.0 / max(total_acc, 1)  # quantile discreteness
        assert (dropped / max(total_acc, 1) <= tol).all()

    def test_escalation_monotone(self, face_pipe):
        det = packed_detector(face_pipe)
        scenes = [make_scene(72, [(24, 0)], window=WINDOW, seed_or_rng=s)[0]
                  for s in (31, 32)]
        cal = CascadeCalibrator(det).calibrate(scenes)
        esc = list(cal.escalation)
        assert all(0.0 <= e <= 1.0 for e in esc)
        assert all(a >= b for a, b in zip(esc, esc[1:]))

    def test_requires_packed_shared(self, face_pipe):
        dense = SlidingWindowDetector(face_pipe, window=WINDOW, stride=6)
        with pytest.raises(ValueError, match="packed"):
            CascadeCalibrator(dense)

    def test_schedule_must_reach_full_width(self, face_pipe, scene):
        det = packed_detector(face_pipe)
        calib = CascadeCalibrator(det, words=[2, 4])
        with pytest.raises(ValueError, match="full model"):
            calib.calibrate([scene])


class TestScannerConstruction:
    def test_stage_words_must_increase(self, face_pipe):
        det = packed_detector(face_pipe)
        with pytest.raises(ValueError, match="increasing"):
            CascadeScanner(det, stages=[CascadeStage(8), CascadeStage(8)])

    def test_dense_detector_rejected(self, face_pipe):
        dense = SlidingWindowDetector(face_pipe, window=WINDOW, stride=6)
        with pytest.raises(ValueError, match="packed"):
            CascadeScanner(dense)

    def test_detector_cascade_requires_packed(self, face_pipe):
        with pytest.raises(ValueError, match="packed"):
            SlidingWindowDetector(face_pipe, window=WINDOW, cascade=True)

    def test_detector_builds_scanner_from_dict(self, face_pipe):
        det = packed_detector(face_pipe, cascade={"seed_factor": 3,
                                                  "refine_band": 0.1})
        sc = det.cascade_scanner()
        assert isinstance(sc, CascadeScanner)
        assert sc.seed_factor == 3 and sc.refine_band == 0.1
        assert det.cascade_scanner() is sc  # cached


class TestProfilerIntegration:
    def test_stage_rows_not_folded_into_infer(self, face_pipe, scene):
        prof = Profiler()
        det = packed_detector(face_pipe, profiler=prof,
                              cascade={"seed_factor": 1})
        det.scan(scene)
        table = prof.table()
        assert "cascade_stage0" in table
        assert "assemble_prefix" in table
        n_stages = len(det.cascade_scanner().stages)
        for si in range(n_stages):
            assert f"cascade_stage{si}" in prof.stats
        # prefix work is not folded into the full-assembly stage
        n_windows = det.cascade_scanner().last_stats["windows"]
        assert prof.stats["cascade_stage0"].items == n_windows


class TestLadderIntegration:
    def test_cascade_ladder_rungs(self):
        from repro.runtime.ladder import cascade_ladder
        ladder = cascade_ladder([4, 16, 64])
        names = [r.name for r in ladder.rungs]
        assert names == ["full", "coarse", "cascade16", "cascade4", "skip"]
        assert ladder.rungs[2].word_budget == 16
        assert ladder.rungs[-1].word_budget == 4
        # word_budget takes precedence over prefix_fraction
        assert ladder.rungs[2].prefix_words(4096) == 16
        assert ladder.rungs[0].prefix_words(4096) == 64

    def test_word_budget_validation(self):
        from repro.runtime.ladder import Rung
        with pytest.raises(ValueError):
            Rung("bad", word_budget=0)

    def test_serving_sheds_cascade_depth_under_load(self, face_pipe, scene):
        from repro.pipeline.multiscale import PyramidDetector
        from repro.runtime.ladder import cascade_ladder
        from repro.runtime.serving import ResilientVideoDetector
        det = packed_detector(face_pipe, cascade={"seed_factor": 1})
        ladder = cascade_ladder(
            [s.words for s in det.cascade_scanner().stages])
        runtime = ResilientVideoDetector(PyramidDetector(det), budget=10.0,
                                         stall_timeout=None, ladder=ladder)
        runtime.scheduler.set_rung(len(ladder) - 2)  # narrowest cascade rung
        result = runtime.step(scene)
        assert result.rung.startswith("cascade")
        assert result.mode == "detected"

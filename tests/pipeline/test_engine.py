"""Tests for the shared-feature detection engine.

The load-bearing property is *bitwise* equivalence: the engine's cached
whole-scene extraction, sliced per window, must reproduce the per-window
keyed recompute exactly - same hypervectors, same queries, same detection
scores.  Plus the LRU cache semantics the pyramid detector relies on.
"""

import numpy as np
import pytest

from repro.features.hog_hd import HDHOGExtractor
from repro.pipeline.detector import SlidingWindowDetector, make_scene
from repro.pipeline.engine import SharedFeatureEngine, scene_key
from repro.pipeline.hdface import HDFacePipeline
from repro.pipeline.multiscale import PyramidDetector, pyramid
from repro.profiling import Profiler


@pytest.fixture(scope="module")
def extractor():
    return HDHOGExtractor(dim=512, cell_size=8, magnitude="l1",
                          seed_or_rng=0)


@pytest.fixture(scope="module")
def scene():
    out, _ = make_scene(48, [(8, 16)], window=24, seed_or_rng=3)
    return out


@pytest.fixture(scope="module")
def face_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
                          epochs=5, seed_or_rng=0).fit(xtr, ytr)


class TestFieldsEquivalence:
    def test_window_fields_match_scene_slice(self, extractor, scene):
        fields = extractor.extract_fields(scene)
        for origin in [(0, 0), (5, 9), (24, 24), (24, 0)]:
            wf = extractor.window_fields(scene, origin, 24)
            y, x = origin
            assert np.array_equal(wf.mag, fields.mag[y : y + 24, x : x + 24])
            assert np.array_equal(wf.bins, fields.bins[y : y + 24, x : x + 24])

    def test_strip_decomposition_invariant(self, extractor, scene):
        whole = extractor.extract_fields(scene, strip_rows=10_000)
        stripped = extractor.extract_fields(scene, strip_rows=7)
        assert np.array_equal(whole.mag, stripped.mag)
        assert np.array_equal(whole.bins, stripped.bins)

    def test_l2_mode_equivalence(self, scene):
        ext = HDHOGExtractor(dim=256, cell_size=8, magnitude="l2_scaled",
                             sqrt_iters=4, seed_or_rng=1)
        fields = ext.extract_fields(scene)
        wf = ext.window_fields(scene, (9, 13), 16)
        assert np.array_equal(wf.mag, fields.mag[9:25, 13:29])
        assert np.array_equal(wf.bins, fields.bins[9:25, 13:29])

    def test_fields_do_not_disturb_legacy_rng(self, scene):
        ext_a = HDHOGExtractor(dim=256, cell_size=8, magnitude="l1",
                               seed_or_rng=5)
        ext_b = HDHOGExtractor(dim=256, cell_size=8, magnitude="l1",
                               seed_or_rng=5)
        ext_a.extract_fields(scene)  # must not advance the stateful rng
        img = scene[:24, :24]
        assert np.array_equal(ext_a.extract(img), ext_b.extract(img))


class TestCellGridAt:
    def test_matches_cell_histograms_at_origin(self, extractor, scene):
        fields = extractor.extract_fields(scene)
        c = extractor.cell_size
        ref = extractor.cell_histograms(fields.mag, fields.bins)
        n_y, n_x, _ = ref.counts.shape
        grid = extractor.cell_grid_at(fields,
                                      c * np.arange(n_y), c * np.arange(n_x))
        assert np.array_equal(grid.bundles, ref.bundles)
        assert np.array_equal(grid.counts, ref.counts)

    def test_arbitrary_anchors_match_sliced_aggregation(self, extractor, scene):
        fields = extractor.extract_fields(scene)
        grid = extractor.cell_grid_at(fields, [3, 11], [5, 17])
        for i, y in enumerate([3, 11]):
            for j, x in enumerate([5, 17]):
                ref = extractor.cell_histograms(
                    fields.mag[y : y + 8, x : x + 8],
                    fields.bins[y : y + 8, x : x + 8])
                assert np.array_equal(grid.bundles[i, j], ref.bundles[0, 0])
                assert np.array_equal(grid.counts[i, j], ref.counts[0, 0])

    def test_out_of_range_anchor_raises(self, extractor, scene):
        fields = extractor.extract_fields(scene)
        with pytest.raises(ValueError):
            extractor.cell_grid_at(fields, [45], [0])
        with pytest.raises(ValueError):
            extractor.cell_grid_at(fields, [], [0])


class TestWindowQueries:
    def test_bitwise_equal_to_perwindow_reference(self, extractor, scene):
        engine = SharedFeatureEngine(extractor)
        origins = [(0, 0), (12, 12), (8, 20), (24, 24)]
        queries = engine.window_queries(scene, origins, 24)
        for row, origin in zip(queries, origins):
            ref = extractor.window_query(scene, origin, 24)
            assert np.array_equal(row, ref)

    def test_window_not_divisible_by_cell_raises(self, extractor, scene):
        engine = SharedFeatureEngine(extractor)
        with pytest.raises(ValueError):
            engine.window_queries(scene, [(0, 0)], 20)

    def test_no_origins_raises(self, extractor, scene):
        engine = SharedFeatureEngine(extractor)
        with pytest.raises(ValueError):
            engine.window_queries(scene, [], 24)

    def test_injector_bypasses_cache(self, extractor, scene):
        engine = SharedFeatureEngine(extractor)
        clean = engine.window_queries(scene, [(0, 0)], 24)
        zeroed = engine.window_queries(
            scene, [(0, 0)], 24,
            injector=lambda hv, stage: np.zeros_like(hv))
        assert not np.array_equal(clean, zeroed)
        assert engine.cache_info()["entries"] == 1  # corrupted run not cached
        again = engine.window_queries(scene, [(0, 0)], 24)
        assert np.array_equal(clean, again)


class TestCache:
    def test_hit_miss_counters(self, extractor, scene):
        engine = SharedFeatureEngine(extractor)
        engine.window_queries(scene, [(0, 0)], 24)
        assert (engine.hits, engine.misses) == (0, 1)
        engine.window_queries(scene, [(12, 12)], 24)
        assert (engine.hits, engine.misses) == (1, 1)
        info = engine.cache_info()
        assert info["entries"] == 1 and info["bytes"] > 0

    def test_lru_eviction(self, extractor):
        engine = SharedFeatureEngine(extractor, cache_size=2)
        rng = np.random.default_rng(0)
        scenes = [rng.random((24, 24)) for _ in range(3)]
        for s in scenes:
            engine.scene_fields(s)
        assert engine.cache_info()["entries"] == 2
        engine.scene_fields(scenes[0])  # evicted -> recompute
        assert engine.misses == 4

    def test_scene_key_is_content_addressed(self):
        rng = np.random.default_rng(0)
        a = rng.random((16, 16))
        assert scene_key(a) == scene_key(a.copy())
        assert scene_key(a) != scene_key(a.T.copy())

    def test_cache_size_must_be_positive(self, extractor):
        with pytest.raises(ValueError):
            SharedFeatureEngine(extractor, cache_size=0)

    def test_pyramid_levels_hit_on_rescan(self, face_pipe):
        scene, _ = make_scene(56, [(16, 16)], window=24, seed_or_rng=2)
        det = SlidingWindowDetector(face_pipe, window=24, stride=12,
                                    engine="shared")
        pyr = PyramidDetector(det, scale_step=1.5)
        n_levels = sum(1 for _ in pyramid(scene, 1.5, min_size=24))
        assert n_levels >= 2
        pyr.detect(scene)
        assert det.engine.misses == n_levels
        pyr.detect(scene)  # every level cached now
        assert det.engine.misses == n_levels
        assert det.engine.hits == n_levels


class TestDetectorEngines:
    def test_shared_and_perwindow_scores_bitwise_equal(self, face_pipe):
        scene, _ = make_scene(48, [(12, 12)], window=24, seed_or_rng=4)
        shared = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                       engine="shared").scan(scene)
        perwin = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                       engine="perwindow").scan(scene)
        assert np.array_equal(shared.scores, perwin.scores)
        assert np.array_equal(shared.detections, perwin.detections)

    def test_legacy_map_shape_matches(self, face_pipe):
        scene, _ = make_scene(48, [], window=24, seed_or_rng=4)
        shared = SlidingWindowDetector(face_pipe, window=24, stride=12,
                                       engine="shared").scan(scene)
        legacy = SlidingWindowDetector(face_pipe, window=24, stride=12,
                                       engine="legacy").scan(scene)
        assert shared.scores.shape == legacy.scores.shape

    def test_auto_resolves_to_shared_for_hd_pipeline(self, face_pipe):
        det = SlidingWindowDetector(face_pipe, window=24)
        assert det.mode == "shared" and det.engine is not None

    def test_unknown_engine_raises(self, face_pipe):
        with pytest.raises(ValueError):
            SlidingWindowDetector(face_pipe, window=24, engine="warp")

    def test_engine_instance_shared_between_detectors(self, face_pipe):
        scene, _ = make_scene(48, [], window=24, seed_or_rng=4)
        engine = SharedFeatureEngine(face_pipe.extractor)
        det_a = SlidingWindowDetector(face_pipe, window=24, stride=24,
                                      engine=engine)
        det_b = SlidingWindowDetector(face_pipe, window=24, stride=12,
                                      engine=engine)
        det_a.scan(scene)
        det_b.scan(scene)  # second detector reuses the cached fields
        assert (engine.hits, engine.misses) == (1, 1)

    def test_profiler_records_stages(self, face_pipe):
        scene, _ = make_scene(48, [], window=24, seed_or_rng=4)
        prof = Profiler()
        det = SlidingWindowDetector(face_pipe, window=24, stride=12,
                                    engine="shared", profiler=prof)
        det.scan(scene)
        for stage in ("fields", "cell_grid", "assemble", "classify"):
            assert prof.stats[stage].calls == 1
            assert prof.stats[stage].seconds >= 0.0
        assert prof.stats["fields"].total_ops() > 0

    def test_batched_similarities_match_per_row(self, face_pipe):
        scene, _ = make_scene(48, [(12, 12)], window=24, seed_or_rng=4)
        engine = SharedFeatureEngine(face_pipe.extractor)
        origins = [(0, 0), (12, 12), (24, 24)]
        queries = engine.window_queries(scene, origins, 24)
        batched = face_pipe.classifier.similarities(queries)
        for k in range(len(origins)):
            single = face_pipe.classifier.similarities(queries[k : k + 1])
            assert np.allclose(batched[k], single[0])


class TestPackedBackend:
    def test_queries_match_dense_binarized_reference(self, extractor, scene):
        from repro.core.hypervector import unpack_bits
        engine = SharedFeatureEngine(extractor, backend="packed")
        origins = [(0, 0), (12, 12), (8, 20), (24, 24)]
        packed = engine.window_queries(scene, origins, 24)
        keys = extractor._keys(3, 3).reshape(-1, extractor.dim)
        for row, origin in zip(packed, origins):
            wf = extractor.window_fields(scene, origin, 24)
            ref = extractor.cell_histograms(wf.mag, wf.bins)
            signs = np.where(ref.bundles >= 0, 1, -1).astype(np.int64)
            bound = signs.reshape(-1, extractor.dim) * keys
            valid = (ref.counts > 0).reshape(-1)
            total = bound[valid].sum(axis=0)
            expected = np.where(total >= 0, 1, -1)
            assert np.array_equal(unpack_bits(row, extractor.dim), expected)

    def test_scan_scores_follow_binary_engine_semantics(self, face_pipe):
        from repro.core.hypervector import unpack_bits
        from repro.learning.binary_inference import BinaryHDCEngine
        scene, _ = make_scene(48, [(12, 12)], window=24, seed_or_rng=4)
        det = SlidingWindowDetector(face_pipe, window=24, stride=12,
                                    engine="shared", backend="packed")
        result = det.scan(scene)
        origins, grid = det.origins(scene.shape)
        packed = det.engine.window_queries(scene, origins, 24)
        queries = unpack_bits(packed, face_pipe.dim)
        binary = BinaryHDCEngine(face_pipe.classifier)
        dist = binary.distances(queries)
        margin = 2.0 * (dist[:, 0] - dist[:, 1]) / face_pipe.dim
        assert np.allclose(result.scores, margin.reshape(grid))
        assert np.array_equal(result.detections.ravel(),
                              binary.predict(queries) == 1)

    def test_packed_entries_are_much_smaller(self, extractor, scene):
        dense = SharedFeatureEngine(extractor, backend="dense")
        packed = SharedFeatureEngine(extractor, backend="packed")
        origins = [(0, 0), (12, 12)]
        dense.window_queries(scene, origins, 24)
        packed.window_queries(scene, origins, 24)
        d, p = dense.cache_info(), packed.cache_info()
        assert d["backend"] == "dense" and p["backend"] == "packed"
        assert p["bytes"] * 6 < d["bytes"]

    def test_cache_info_reports_evictions_and_capacity(self, extractor):
        engine = SharedFeatureEngine(extractor, cache_size=2,
                                     backend="packed")
        rng = np.random.default_rng(1)
        for _ in range(3):
            engine.scene_fields(rng.random((24, 24)))
        info = engine.cache_info()
        assert info["capacity"] == 2 and info["entries"] == 2
        assert info["evictions"] == 1 and info["misses"] == 3

    def test_injector_applies_and_bypasses_cache(self, extractor, scene):
        engine = SharedFeatureEngine(extractor, backend="packed")
        clean = engine.window_queries(scene, [(0, 0)], 24)
        flipped = engine.window_queries(
            scene, [(0, 0)], 24, injector=lambda hv, stage: ~hv
            if hv.dtype == np.uint64 else -hv)
        assert not np.array_equal(clean, flipped)
        assert engine.cache_info()["entries"] == 1
        again = engine.window_queries(scene, [(0, 0)], 24)
        assert np.array_equal(clean, again)

    def test_unknown_backend_raises(self, extractor):
        with pytest.raises(ValueError):
            SharedFeatureEngine(extractor, backend="float16")


class TestSceneValidation:
    """Engine-boundary checks: garbage must raise, not poison the cache."""

    def _bad_scenes(self):
        nan = np.ones((24, 24))
        nan[3, 3] = np.nan
        inf = np.ones((24, 24))
        inf[0, 0] = np.inf
        return {
            "dtype": (np.full((24, 24), "x", dtype=object), "dtype"),
            "complex": (np.zeros((24, 24), dtype=complex), "dtype"),
            "ndim": (np.zeros((2, 24, 24)), "ndim"),
            "empty": (np.zeros((0, 24)), "empty"),
            "nan": (nan, "NaN"),
            "inf": (inf, "infinite"),
        }

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_scene_fields_rejects_garbage_naming_the_property(
            self, extractor, backend):
        engine = SharedFeatureEngine(extractor, backend=backend)
        for scene, needle in self._bad_scenes().values():
            with pytest.raises(ValueError, match=needle):
                engine.scene_fields(scene)
        assert engine.cache_info()["entries"] == 0

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_window_queries_reject_garbage(self, extractor, backend):
        engine = SharedFeatureEngine(extractor, backend=backend)
        bad = np.ones((24, 24))
        bad[5, 5] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            engine.window_queries(bad, [(0, 0)], 16)
        assert engine.cache_info()["entries"] == 0

    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_delta_update_validates_both_frames(self, extractor, scene,
                                                backend):
        engine = SharedFeatureEngine(extractor, backend=backend)
        bad = scene.copy()
        bad[1, 1] = np.inf
        with pytest.raises(ValueError, match="scene.*infinite"):
            engine.delta_update(scene, bad)
        with pytest.raises(ValueError, match="prev_scene.*infinite"):
            engine.delta_update(bad, scene)

    def test_integer_scenes_still_accepted(self, extractor):
        engine = SharedFeatureEngine(extractor, backend="packed")
        engine.scene_fields(np.arange(24 * 24).reshape(24, 24) % 2)
        assert engine.cache_info()["entries"] == 1

    def test_packed_requires_shared_engine(self, face_pipe):
        with pytest.raises(ValueError):
            SlidingWindowDetector(face_pipe, window=24, engine="legacy",
                                  backend="packed")

    def test_detector_adopts_engine_backend(self, face_pipe):
        engine = SharedFeatureEngine(face_pipe.extractor, backend="packed")
        det = SlidingWindowDetector(face_pipe, window=24, engine=engine)
        assert det.backend == "packed"


class TestConcurrency:
    def _serial_and_concurrent(self, extractor, backend):
        from concurrent.futures import ThreadPoolExecutor
        rng = np.random.default_rng(7)
        scenes = [rng.random((48, 48)) for _ in range(4)]
        origins = [(0, 0), (8, 8), (24, 16), (24, 24)]
        serial = SharedFeatureEngine(extractor, backend=backend)
        expected = [serial.window_queries(s, origins, 24) for s in scenes]
        engine = SharedFeatureEngine(extractor, backend=backend)
        jobs = [s for s in scenes for _ in range(3)]  # deliberate races
        with ThreadPoolExecutor(max_workers=4) as pool:
            got = list(pool.map(
                lambda s: engine.window_queries(s, origins, 24), jobs))
        for s, q in zip(jobs, got):
            idx = next(i for i, x in enumerate(scenes) if x is s)
            assert np.array_equal(q, expected[idx])

    def test_concurrent_queries_bitwise_identical_dense(self, extractor):
        self._serial_and_concurrent(extractor, "dense")

    def test_concurrent_queries_bitwise_identical_packed(self, extractor):
        self._serial_and_concurrent(extractor, "packed")

    def test_strip_parallel_fields_bitwise_identical(self, extractor, scene):
        serial = extractor.extract_fields(scene, strip_rows=7)
        threaded = extractor.extract_fields(scene, strip_rows=7, workers=3)
        assert np.array_equal(serial.mag, threaded.mag)
        assert np.array_equal(serial.bins, threaded.bins)

    def test_engine_workers_bitwise_identical(self, extractor, scene):
        one = SharedFeatureEngine(extractor, workers=1)
        many = SharedFeatureEngine(extractor, workers=4)
        origins = [(0, 0), (12, 12)]
        assert np.array_equal(one.window_queries(scene, origins, 24),
                              many.window_queries(scene, origins, 24))

    def test_bad_workers_raises(self, extractor):
        with pytest.raises(ValueError):
            SharedFeatureEngine(extractor, workers=0)

"""Tests for the cross-stream window batcher (pipeline/batcher.py).

The load-bearing property is bitwise equivalence: pooling many scenes'
windows into one packed majority + one classify call must produce
exactly the scores each scene's solo :meth:`SlidingWindowDetector.scan`
would - on the flat path, the cascade path, under per-request stride /
``max_words`` / model overrides, and with the dense / injector solo
fallbacks mixed into the same batch.
"""

import numpy as np
import pytest

from repro.pipeline.batcher import CrossStreamBatcher, ScanRequest
from repro.pipeline.cascade import CascadeStage
from repro.pipeline.detector import SlidingWindowDetector, make_scene
from repro.pipeline.hdface import HDFacePipeline
from repro.reliability.faults import DetectionFaultInjector

DIM = 1024
WINDOW = 24


@pytest.fixture(scope="module")
def face_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="module")
def scenes():
    out = []
    for seed, size, faces in ((3, 64, [(6, 6)]), (4, 72, [(0, 0), (40, 30)]),
                              (5, 56, [(20, 12)])):
        scene, _ = make_scene(size, faces, window=WINDOW, seed_or_rng=seed)
        out.append(scene)
    return out


def shared_detector(pipe, **kw):
    return SlidingWindowDetector(pipe, window=WINDOW, stride=8,
                                 backend="packed", **kw)


def assert_maps_equal(got, want):
    assert got.stride == want.stride and got.window == want.window
    np.testing.assert_array_equal(got.scores, want.scores)
    np.testing.assert_array_equal(got.detections, want.detections)


class TestValidation:
    def test_requires_shared_engine(self, face_pipe):
        det = SlidingWindowDetector(face_pipe, window=WINDOW, stride=8,
                                    backend="dense", engine="legacy")
        with pytest.raises(ValueError):
            CrossStreamBatcher(det)

    def test_empty_batch(self, face_pipe):
        batcher = CrossStreamBatcher(shared_detector(face_pipe))
        assert batcher.scan_many([]) == []


class TestFlatPath:
    def test_batched_matches_solo_per_scene(self, face_pipe, scenes):
        det = shared_detector(face_pipe)
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many([ScanRequest(s) for s in scenes])
        assert batcher.last_stats["flat"] == len(scenes)
        assert batcher.last_stats["solo"] == 0
        assert batcher.last_stats["groups"] == 1
        for got, scene in zip(maps, scenes):
            assert_maps_equal(got, det.scan(scene))

    def test_stride_override_per_request(self, face_pipe, scenes):
        det = shared_detector(face_pipe)
        batcher = CrossStreamBatcher(det)
        strides = [6, 8, 12]
        maps = batcher.scan_many([ScanRequest(s, stride=st)
                                  for s, st in zip(scenes, strides)])
        for got, scene, st in zip(maps, scenes, strides):
            assert_maps_equal(got, det.scan(scene, stride=st))

    def test_max_words_groups_and_matches(self, face_pipe, scenes):
        det = shared_detector(face_pipe)
        batcher = CrossStreamBatcher(det)
        requests = [ScanRequest(scenes[0], max_words=4),
                    ScanRequest(scenes[1], max_words=4),
                    ScanRequest(scenes[2])]
        maps = batcher.scan_many(requests)
        # truncated and full-width requests classify under different
        # models, so they must not share a group
        assert batcher.last_stats["groups"] == 2
        assert_maps_equal(maps[0], det.scan(scenes[0], max_words=4))
        assert_maps_equal(maps[1], det.scan(scenes[1], max_words=4))
        assert_maps_equal(maps[2], det.scan(scenes[2]))

    def test_model_override_matches_solo(self, face_pipe, scenes):
        det = shared_detector(face_pipe)
        override = det.packed_model().corrupted(0.02, seed_or_rng=11)
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many(
            [ScanRequest(s, model=override) for s in scenes[:2]])
        for got, scene in zip(maps, scenes[:2]):
            assert_maps_equal(got, det.scan(scene, model=override))

    def test_mixed_models_keep_request_order(self, face_pipe, scenes):
        det = shared_detector(face_pipe)
        override = det.packed_model().corrupted(0.05, seed_or_rng=2)
        requests = [ScanRequest(scenes[0]),
                    ScanRequest(scenes[1], model=override),
                    ScanRequest(scenes[2])]
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many(requests)
        assert batcher.last_stats["groups"] == 2
        assert_maps_equal(maps[0], det.scan(scenes[0]))
        assert_maps_equal(maps[1], det.scan(scenes[1], model=override))
        assert_maps_equal(maps[2], det.scan(scenes[2]))


class TestSoloFallbacks:
    def test_dense_backend_scans_solo(self, face_pipe, scenes):
        det = SlidingWindowDetector(face_pipe, window=WINDOW, stride=8,
                                    backend="dense")
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many([ScanRequest(s) for s in scenes])
        assert batcher.last_stats["solo"] == len(scenes)
        assert batcher.last_stats["groups"] == 0
        for got, scene in zip(maps, scenes):
            assert_maps_equal(got, det.scan(scene))

    def test_injector_request_scans_solo(self, face_pipe, scenes):
        det = shared_detector(face_pipe)
        injector = DetectionFaultInjector(0.01, DIM, seed_or_rng=5)
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many([ScanRequest(scenes[0]),
                                  ScanRequest(scenes[1], injector=injector)])
        assert batcher.last_stats["solo"] == 1
        assert batcher.last_stats["flat"] == 1
        assert_maps_equal(maps[0], det.scan(scenes[0]))
        # fault injection is stochastic, so only the shape is checked
        want = det.scan(scenes[1])
        assert maps[1].scores.shape == want.scores.shape


class TestCascadePath:
    def test_batched_cascade_matches_solo(self, face_pipe, scenes):
        det = shared_detector(face_pipe, cascade=True)
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many([ScanRequest(s) for s in scenes])
        assert batcher.last_stats["cascade"] == len(scenes)
        for got, scene in zip(maps, scenes):
            assert_maps_equal(got, det.scan(scene))

    def test_batched_cascade_with_max_words(self, face_pipe, scenes):
        det = shared_detector(face_pipe, cascade=True)
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many(
            [ScanRequest(s, max_words=4) for s in scenes])
        for got, scene in zip(maps, scenes):
            assert_maps_equal(got, det.scan(scene, max_words=4))

    def test_explicit_stages_exercise_rejection(self, face_pipe, scenes):
        # an aggressive stage-0 threshold makes the prefix cascade
        # actually reject windows, so survivor bookkeeping is exercised
        stages = [CascadeStage(2, -0.35), CascadeStage(DIM // 64, 0.0)]
        det = shared_detector(face_pipe, cascade={"stages": stages})
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many([ScanRequest(s) for s in scenes])
        for got, scene in zip(maps, scenes):
            assert_maps_equal(got, det.scan(scene))

    def test_cascade_and_flat_mix(self, face_pipe, scenes):
        det = shared_detector(face_pipe, cascade=True)
        override = det.packed_model()  # has distance_block -> cascade route
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many([ScanRequest(scenes[0]),
                                  ScanRequest(scenes[1], model=override)])
        assert batcher.last_stats["cascade"] == 2
        assert_maps_equal(maps[0], det.scan(scenes[0]))
        assert_maps_equal(maps[1], det.scan(scenes[1], model=override))


class TestGuardedModels:
    """Guarded / adaptive models ride the batched paths like any model."""

    def test_guarded_model_groups_and_matches_flat(self, face_pipe, scenes):
        from repro.reliability import GuardedClassModel
        det = shared_detector(face_pipe)
        guarded = GuardedClassModel(det.packed_model(), seed_or_rng=0)
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many(
            [ScanRequest(s, model=guarded) for s in scenes])
        # one shared guarded model -> one group, full batching preserved
        assert batcher.last_stats["groups"] == 1
        assert batcher.last_stats["flat"] == len(scenes)
        for got, scene in zip(maps, scenes):
            assert_maps_equal(got, det.scan(scene, model=guarded))
            assert_maps_equal(got, det.scan(scene))  # replica 0 == base

    def test_adaptive_model_takes_cascade_route(self, face_pipe, scenes):
        from repro.reliability import AdaptiveGuardedModel
        det = shared_detector(face_pipe, cascade=True)
        model = AdaptiveGuardedModel(det.packed_model(), seed_or_rng=0)
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many(
            [ScanRequest(s, model=model) for s in scenes])
        # distance_block is what routes a model through the cascade
        assert batcher.last_stats["cascade"] == len(scenes)
        assert batcher.last_stats["groups"] == 1
        for got, scene in zip(maps, scenes):
            assert_maps_equal(got, det.scan(scene, model=model))


class TestStats:
    def test_window_count_totals(self, face_pipe, scenes):
        det = shared_detector(face_pipe)
        batcher = CrossStreamBatcher(det)
        maps = batcher.scan_many([ScanRequest(s) for s in scenes])
        total = sum(m.scores.size for m in maps)
        assert batcher.last_stats["windows"] == total
        assert batcher.last_stats["requests"] == len(scenes)

"""Tests for the cycle-level FPGA datapath simulator."""

import pytest

from repro.hardware.simulator import (
    HDDatapathSimulator,
    VectorOp,
    hd_hog_trace,
)


class TestVectorOp:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            VectorOp("divide", 64)

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            VectorOp("logic", 0)


class TestSimulator:
    def test_single_op_beats(self):
        sim = HDDatapathSimulator(lanes=64, pipeline_depth=2)
        res = sim.run([VectorOp("logic", 256)])
        # 4 issue beats + pipeline drain
        assert res.cycles == 4 + 2
        assert res.busy_beats == 4

    def test_independent_ops_overlap(self):
        sim = HDDatapathSimulator(lanes=64, pipeline_depth=4)
        ops = [VectorOp("logic", 256) for _ in range(10)]
        res = sim.run(ops)
        # back-to-back issue: 40 beats + one final drain
        assert res.cycles == 40 + 4
        assert res.stall_cycles == 0

    def test_dependent_ops_stall(self):
        sim = HDDatapathSimulator(lanes=64, pipeline_depth=4)
        ops = [VectorOp("logic", 64),
               VectorOp("logic", 64, depends_on_previous=True)]
        res = sim.run(ops)
        assert res.stall_cycles == 4

    def test_popcount_latency_longer(self):
        sim = HDDatapathSimulator(lanes=256, pipeline_depth=2)
        dep_logic = sim.run([VectorOp("logic", 256),
                             VectorOp("logic", 256, depends_on_previous=True)])
        dep_pop = sim.run([VectorOp("popcount", 256),
                           VectorOp("logic", 256, depends_on_previous=True)])
        assert dep_pop.cycles > dep_logic.cycles

    def test_utilization_bounded(self):
        sim = HDDatapathSimulator(lanes=128)
        res = sim.run([VectorOp("logic", 1024) for _ in range(5)])
        assert 0.0 < res.utilization <= 1.0

    def test_wider_fabric_faster(self):
        ops = [VectorOp("logic", 65536) for _ in range(4)]
        narrow = HDDatapathSimulator(lanes=1024).run(ops)
        wide = HDDatapathSimulator(lanes=8192).run(ops)
        assert wide.cycles < narrow.cycles

    def test_seconds_conversion(self):
        sim = HDDatapathSimulator(lanes=64)
        res = sim.run([VectorOp("logic", 64)])
        assert res.seconds(1e6) == pytest.approx(res.cycles / 1e6)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HDDatapathSimulator(lanes=0)


class TestTraceGeneration:
    def test_trace_nonempty_and_valid(self):
        trace = hd_hog_trace((16, 16), 1024)
        assert len(trace) > 10
        assert all(isinstance(op, VectorOp) for op in trace)

    def test_l1_trace_shorter(self):
        l2 = hd_hog_trace((16, 16), 1024, magnitude="l2_scaled", gamma=False)
        l1 = hd_hog_trace((16, 16), 1024, magnitude="l1", gamma=False)
        assert len(l1) < len(l2)

    def test_binary_search_serializes(self):
        trace = hd_hog_trace((16, 16), 1024)
        assert any(op.depends_on_previous for op in trace)


class TestAgreementWithAnalyticModel:
    def test_simulated_cycles_track_analytic_estimate(self):
        """The cycle-level simulator and the throughput model must agree
        on the *shape* of the cost (within pipeline overhead)."""
        from repro.hardware.opcount import hd_hog_profile
        dim = 2048
        shape = (24, 24)
        sim = HDDatapathSimulator(lanes=65536, pipeline_depth=4)
        res = sim.run(hd_hog_trace(shape, dim))
        prof = hd_hog_profile(shape, dim)
        # analytic compute beats on an equally wide fabric
        analytic = (prof.get("bit") + prof.get("rng_bit") + prof.get("int_add")) / 65536
        assert res.cycles == pytest.approx(analytic, rel=0.6)

    def test_simulator_scaling_with_image(self):
        sim = HDDatapathSimulator(lanes=65536)
        small = sim.run(hd_hog_trace((16, 16), 2048))
        big = sim.run(hd_hog_trace((32, 32), 2048))
        assert 2.5 < big.cycles / small.cycles < 5.5

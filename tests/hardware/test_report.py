"""Tests for the Fig. 5/7 efficiency report composition."""

import pytest

from repro.hardware.platforms import CORTEX_A53, KINTEX7_FPGA
from repro.hardware.report import (
    EfficiencyRow,
    WorkloadSpec,
    dnn_inference_cost,
    dnn_training_cost,
    epoch_time_grid,
    fig7_report,
    hdface_inference_cost,
    hdface_training_cost,
    workload_for_dataset,
)


@pytest.fixture(scope="module")
def workload():
    return workload_for_dataset("EMOTION", scale="paper")


class TestWorkloadSpec:
    def test_from_registry(self, workload):
        assert workload.image_size == 48
        assert workload.n_classes == 7
        assert workload.n_train == 36685

    def test_feature_count(self):
        w = WorkloadSpec("X", 48, 2, 100)
        assert w.n_features == 6 * 6 * 8

    def test_dnn_layers(self):
        w = WorkloadSpec("X", 48, 7, 100, hidden=(1024, 1024))
        assert w.dnn_layers == (288, 1024, 1024, 7)


class TestCostComposition:
    def test_costs_positive(self, workload):
        for plat in (CORTEX_A53, KINTEX7_FPGA):
            for fn in (hdface_training_cost, dnn_training_cost):
                t, e = fn(workload, plat)
                assert t > 0 and e > 0

    def test_training_costs_more_than_inference(self, workload):
        t_train, _ = hdface_training_cost(workload, CORTEX_A53)
        t_infer, _ = hdface_inference_cost(workload, CORTEX_A53)
        assert t_train > t_infer * workload.n_train * 0.5

    def test_more_epochs_cost_more(self, workload):
        t5, _ = dnn_training_cost(workload, CORTEX_A53, epochs=5)
        t50, _ = dnn_training_cost(workload, CORTEX_A53, epochs=50)
        assert t50 == pytest.approx(10 * t5, rel=0.3)


class TestFig7Report:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig7_report()

    def test_full_grid(self, rows):
        # 3 datasets x 2 platforms x 2 phases
        assert len(rows) == 12

    def test_hdface_wins_training_everywhere(self, rows):
        for r in rows:
            if r.phase == "training":
                assert r.speedup > 1.0, f"{r.dataset}/{r.platform}"
                assert r.energy_efficiency > 1.0

    def test_training_advantage_exceeds_inference(self, rows):
        # the paper's structural observation: "HDFace's inference efficiency
        # has a closer margin to DNN" than training
        import numpy as np
        train = np.mean([r.speedup for r in rows if r.phase == "training"])
        infer = np.mean([r.speedup for r in rows if r.phase == "inference"])
        assert train > 2 * infer

    def test_average_training_ratios_near_paper(self, rows):
        """Average training speedups must land in the paper's ballpark
        (abstract: 6.1x/3.0x CPU, 4.6x/12.1x FPGA) within the calibration
        tolerance documented in EXPERIMENTS.md (factor ~4)."""
        import numpy as np
        for platform, paper_speed in (("cpu", 6.1), ("fpga", 4.6)):
            got = np.mean([
                r.speedup for r in rows
                if r.phase == "training" and r.platform == platform
            ])
            assert paper_speed / 4.0 < got < paper_speed * 4.0

    def test_row_properties(self):
        row = EfficiencyRow("X", "cpu", "training", 1.0, 6.0, 2.0, 5.0)
        assert row.speedup == 6.0
        assert row.energy_efficiency == 2.5


class TestEpochTimeGrid:
    def test_grid_shapes(self, workload):
        hd, dnn = epoch_time_grid(workload, CORTEX_A53,
                                  dims=(1024, 4096),
                                  hidden_configs=((64, 64), (1024, 1024)))
        assert set(hd) == {1024, 4096}
        assert set(dnn) == {(64, 64), (1024, 1024)}

    def test_hdface_epoch_time_grows_with_dim(self, workload):
        hd, _ = epoch_time_grid(workload, CORTEX_A53, dims=(1024, 8192))
        assert hd[8192] > hd[1024]

    def test_dnn_epoch_time_grows_with_width(self, workload):
        _, dnn = epoch_time_grid(workload, CORTEX_A53,
                                 hidden_configs=((64, 64), (2048, 2048)))
        assert dnn[(2048, 2048)] > dnn[(64, 64)]

    def test_paper_ratio_shape(self, workload):
        # Sec 6.3: 0.9 s vs 5.4 s per epoch -> DNN/HDFace ~ 6 at best
        # configs; require the same direction and order of magnitude
        hd, dnn = epoch_time_grid(workload, CORTEX_A53,
                                  dims=(4096,), hidden_configs=((1024, 1024),))
        ratio = dnn[(1024, 1024)] / hd[4096]
        assert 1.5 < ratio < 40


class TestProtectionOverheadReport:
    def test_rows_for_every_platform(self):
        from repro.hardware.report import protection_overhead_report
        rows = protection_overhead_report(dim=4096, replicas=3)
        assert {r.platform for r in rows} == {"cpu", "fpga"}
        for r in rows:
            assert r.guarded_cycles > r.unguarded_cycles
            assert r.cycle_overhead > 1.0
            assert r.energy_overhead > 1.0
            assert r.repair_cycles > 0

    def test_longer_scrub_period_shrinks_overhead(self):
        from repro.hardware.report import protection_overhead_report
        every = protection_overhead_report(dim=4096, scrub_every=1)[0]
        rare = protection_overhead_report(dim=4096, scrub_every=50)[0]
        assert rare.cycle_overhead < every.cycle_overhead


class TestMemoryProtectionReport:
    def test_schemes_per_platform(self):
        from repro.hardware.report import memory_protection_report
        rows = memory_protection_report(dim=4096, n_classes=2)
        assert {r.platform for r in rows} == {"cpu", "fpga"}
        per_platform = {r.platform: {s.scheme for s in rows
                                     if s.platform == r.platform}
                        for r in rows}
        for schemes in per_platform.values():
            assert schemes == {"unguarded", "tmr", "ecc_remat"}

    def test_ecc_remat_beats_tmr_bytes_by_2_5x(self):
        from repro.hardware.report import memory_protection_report
        rows = memory_protection_report(dim=257, n_classes=4)
        tmr = next(r for r in rows if r.scheme == "tmr")
        ecc = next(r for r in rows if r.scheme == "ecc_remat")
        assert ecc.bytes_ratio(tmr) >= 2.5

    def test_bytes_match_guarded_model_footprint(self):
        import numpy as np
        from repro.core.hypervector import random_hypervector
        from repro.core.packed import PackedClassModel
        from repro.hardware.report import memory_protection_report
        from repro.reliability import GuardedClassModel
        dim, k = 257, 4
        base = PackedClassModel(random_hypervector(dim, 0, shape=(k,)))
        ecc_model = GuardedClassModel(base, replicas=1, check="ecc",
                                      seed_or_rng=0)
        tmr_model = GuardedClassModel(base, replicas=3, check="checksum",
                                      seed_or_rng=0)
        rows = memory_protection_report(dim=dim, n_classes=k)
        ecc = next(r for r in rows if r.scheme == "ecc_remat")
        tmr = next(r for r in rows if r.scheme == "tmr")
        assert ecc.resident_bytes == ecc_model.nbytes
        assert tmr.resident_bytes == tmr_model.nbytes

    def test_unguarded_has_no_scrub_cost(self):
        from repro.hardware.report import memory_protection_report
        rows = memory_protection_report()
        for r in rows:
            if r.scheme == "unguarded":
                assert r.scrub_cycles == 0 and r.repair_cycles == 0
            else:
                assert r.scrub_cycles > 0 and r.repair_cycles > 0

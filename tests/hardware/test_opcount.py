"""Tests for the workload operation profiles."""

import pytest

from repro.hardware.opcount import (
    OperationProfile,
    dnn_forward_profile,
    dnn_training_profile,
    encoder_profile,
    hd_hog_profile,
    hdc_infer_profile,
    hdc_learn_profile,
    hog_profile,
)


class TestOperationProfile:
    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            OperationProfile({"bogus": 1.0})

    def test_addition_merges(self):
        a = OperationProfile({"bit": 10, "fp_mul": 5})
        b = OperationProfile({"bit": 1, "int_add": 2})
        c = a + b
        assert c.get("bit") == 11 and c.get("int_add") == 2 and c.get("fp_mul") == 5

    def test_scaling(self):
        p = OperationProfile({"bit": 3}) * 4
        assert p.get("bit") == 12

    def test_zero_counts_dropped(self):
        p = OperationProfile({"bit": 0, "fp_mul": 1})
        assert "bit" not in p.counts

    def test_total_ops_excludes_memory(self):
        p = OperationProfile({"bit": 5, "mem_bytes": 100})
        assert p.total_ops() == 5


class TestHDHOGProfile:
    def test_scales_linearly_with_pixels(self):
        small = hd_hog_profile((16, 16), 1024)
        big = hd_hog_profile((32, 32), 1024)
        assert big.get("bit") == pytest.approx(4 * small.get("bit"), rel=0.15)

    def test_scales_linearly_with_dim(self):
        d1 = hd_hog_profile((16, 16), 1024)
        d4 = hd_hog_profile((16, 16), 4096)
        assert d4.get("bit") == pytest.approx(4 * d1.get("bit"), rel=0.1)

    def test_l1_cheaper_than_l2(self):
        l1 = hd_hog_profile((16, 16), 1024, magnitude="l1", gamma=False)
        l2 = hd_hog_profile((16, 16), 1024, magnitude="l2_scaled", gamma=False)
        assert l1.total_ops() < l2.total_ops()

    def test_no_float_ops(self):
        prof = hd_hog_profile((16, 16), 1024)
        assert prof.get("fp_mul") == 0 and prof.get("fp_atan") == 0

    def test_gamma_adds_sqrt_cost(self):
        plain = hd_hog_profile((16, 16), 1024, magnitude="l1", gamma=False)
        gamma = hd_hog_profile((16, 16), 1024, magnitude="l1", gamma=True)
        assert gamma.total_ops() > plain.total_ops()


class TestHOGProfile:
    def test_uses_transcendentals(self):
        prof = hog_profile((32, 32))
        assert prof.get("fp_atan") == 32 * 32
        assert prof.get("fp_sqrt") > 0

    def test_no_binary_ops(self):
        assert hog_profile((16, 16)).get("bit") == 0


class TestDNNProfiles:
    def test_forward_mac_count(self):
        prof = dnn_forward_profile((10, 20, 5))
        assert prof.get("fp_mul") == 10 * 20 + 20 * 5

    def test_training_about_3x_forward(self):
        fwd = dnn_forward_profile((100, 50, 10))
        train = dnn_training_profile((100, 50, 10))
        assert 2.5 < train.get("fp_mul") / fwd.get("fp_mul") < 3.6


class TestHDCProfiles:
    def test_learn_more_expensive_than_infer(self):
        learn = hdc_learn_profile(4096, 2)
        infer = hdc_infer_profile(4096, 2)
        assert learn.total_ops() > infer.total_ops()

    def test_scales_with_classes(self):
        two = hdc_infer_profile(1024, 2)
        seven = hdc_infer_profile(1024, 7)
        assert seven.get("int_add") > two.get("int_add")

    def test_encoder_dominated_by_projection(self):
        prof = encoder_profile(4096, 288)
        assert prof.get("fp_mul") == 4096 * 288


class TestLevelIDEncoderProfile:
    def test_binary_encoder_has_no_float_ops(self):
        from repro.hardware.opcount import levelid_encoder_profile
        prof = levelid_encoder_profile(4096, 288)
        assert prof.get("fp_mul") == 0 and prof.get("fp_atan") == 0
        assert prof.get("bit") == 4096 * 288

    def test_binary_encoder_cheaper_than_nonlinear(self):
        from repro.hardware.opcount import encoder_profile, levelid_encoder_profile
        from repro.hardware.platforms import CORTEX_A53
        cos_t = CORTEX_A53.time(encoder_profile(4096, 288))
        bin_t = CORTEX_A53.time(levelid_encoder_profile(4096, 288))
        assert bin_t < cos_t


class TestDetectionProfiles:
    def test_fields_plus_aggregate_compose_to_full(self):
        from repro.hardware.opcount import (
            hd_hog_aggregate_profile,
            hd_hog_fields_profile,
        )
        full = hd_hog_profile((24, 24), 2048)
        parts = (hd_hog_fields_profile((24, 24), 2048)
                 + hd_hog_aggregate_profile((24, 24), 2048))
        assert parts.counts == full.counts

    def test_shared_cheaper_than_perwindow_when_overlapping(self):
        from repro.hardware.opcount import (
            perwindow_detection_profile,
            shared_detection_profile,
        )
        shared = shared_detection_profile((96, 96), 24, 6, 2048)
        perwin = perwindow_detection_profile((96, 96), 24, 6, 2048)
        assert shared.total_ops() < perwin.total_ops() / 5

    def test_scene_smaller_than_window_rejected(self):
        from repro.hardware.opcount import shared_detection_profile
        with pytest.raises(ValueError):
            shared_detection_profile((16, 16), 24, 8, 1024)


class TestIncrementalExtractProfile:
    def test_small_delta_far_cheaper_than_full_extraction(self):
        from repro.hardware.opcount import (
            incremental_extract_profile,
            shared_detection_profile,
        )
        # a 26x26 dirty patch on a 128px frame (~4% of pixels)
        inc = incremental_extract_profile((128, 128), (26, 26), 2048)
        full = shared_detection_profile((128, 128), 24, 8, 2048)
        assert inc.total_ops() < full.total_ops() / 5

    def test_cost_grows_with_dirty_area(self):
        from repro.hardware.opcount import incremental_extract_profile
        small = incremental_extract_profile((96, 96), (16, 16), 1024)
        large = incremental_extract_profile((96, 96), (64, 64), 1024)
        assert small.total_ops() < large.total_ops()

    def test_empty_delta_prices_only_the_diff(self):
        from repro.hardware.opcount import incremental_extract_profile
        prof = incremental_extract_profile((64, 64), (0, 0), 1024)
        assert prof.get("int_add") == 64 * 64
        assert prof.get("bit") == 0 and prof.get("rng_bit") == 0
        assert prof.get("mem_bytes") == 16 * 64 * 64

    def test_whole_frame_delta_covers_fields_cost(self):
        from repro.hardware.opcount import (
            hd_hog_fields_profile,
            incremental_extract_profile,
        )
        inc = incremental_extract_profile((64, 64), (64, 64), 1024)
        fields = hd_hog_fields_profile((64, 64), 1024)
        assert inc.total_ops() > fields.total_ops()

    def test_dirty_rect_must_fit(self):
        from repro.hardware.opcount import incremental_extract_profile
        with pytest.raises(ValueError):
            incremental_extract_profile((48, 48), (64, 8), 1024)


class TestProtectionProfiles:
    def test_scrub_streams_every_replica_word(self):
        from repro.hardware.opcount import scrub_profile
        prof = scrub_profile(4096, 2, replicas=3)
        w = 4096 // 64
        assert prof.get("word64") == 2 * 3 * 2 * w + 3 * 2
        assert prof.get("mem_bytes") == 3 * 2 * (w + 1) * 8

    def test_scrub_with_repair_adds_vote(self):
        from repro.hardware.opcount import replica_vote_profile, scrub_profile
        plain = scrub_profile(4096, 2, replicas=3)
        repair = scrub_profile(4096, 2, replicas=3, repair=True)
        vote = replica_vote_profile(4096, 2, replicas=3)
        assert repair.get("word64") == plain.get("word64") + vote.get("word64")

    def test_vote_cost_grows_with_replicas(self):
        from repro.hardware.opcount import replica_vote_profile
        assert (replica_vote_profile(4096, 2, replicas=5).total_ops()
                > replica_vote_profile(4096, 2, replicas=3).total_ops())

    def test_guarded_infer_amortizes_scrub(self):
        from repro.hardware.opcount import (
            guarded_infer_profile,
            packed_infer_profile,
        )
        plain = packed_infer_profile(4096, 2)
        every = guarded_infer_profile(4096, 2, replicas=3, scrub_every=1)
        rare = guarded_infer_profile(4096, 2, replicas=3, scrub_every=100)
        assert plain.total_ops() < rare.total_ops() < every.total_ops()
        # with a 100-query scrub period the overhead is a few percent
        assert rare.total_ops() < plain.total_ops() * 1.1

    def test_guarded_infer_rejects_bad_period(self):
        from repro.hardware.opcount import guarded_infer_profile
        with pytest.raises(ValueError):
            guarded_infer_profile(4096, 2, scrub_every=0)


class TestBatchedStageProfile:
    def test_is_n_windows_times_the_solo_stage(self):
        from repro.hardware.opcount import (batched_stage_profile,
                                            cascade_stage_profile)
        solo = cascade_stage_profile(24, 1024, 0, 4)
        batched = batched_stage_profile(24, 1024, 0, 4, n_windows=7)
        for op, count in solo.counts.items():
            assert batched.counts[op] == count * 7

    def test_one_window_matches_solo_counts(self):
        from repro.hardware.opcount import (batched_stage_profile,
                                            cascade_stage_profile)
        solo = cascade_stage_profile(24, 512, 4, 8)
        batched = batched_stage_profile(24, 512, 4, 8, n_windows=1)
        assert batched.counts == solo.counts

    def test_rejects_empty_batch(self):
        from repro.hardware.opcount import batched_stage_profile
        with pytest.raises(ValueError):
            batched_stage_profile(24, 512, 0, 4, n_windows=0)


class TestEccProfiles:
    def test_encode_cost_is_linear_in_words(self):
        from repro.hardware.opcount import ecc_encode_profile
        one = ecc_encode_profile(10)
        two = ecc_encode_profile(20)
        for op, count in one.counts.items():
            assert two.counts[op] == count * 2

    def test_scrub_repair_fraction_adds_cost(self):
        from repro.hardware.opcount import ecc_scrub_profile
        patrol = ecc_scrub_profile(64)
        worst = ecc_scrub_profile(64, repair_fraction=1.0)
        assert worst.total_ops() > patrol.total_ops()
        assert "repair" in worst.label and "repair" not in patrol.label

    def test_scrub_rejects_bad_fraction(self):
        from repro.hardware.opcount import ecc_scrub_profile
        with pytest.raises(ValueError):
            ecc_scrub_profile(64, repair_fraction=1.5)

    def test_parity_sidecar_is_one_eighth_of_data_traffic(self):
        from repro.hardware.opcount import ecc_encode_profile
        prof = ecc_encode_profile(100)
        assert prof.counts["mem_bytes"] == 100 * 9  # 8B word + 1B parity


class TestRematProfile:
    def test_rng_bits_scale_with_elements(self):
        from repro.hardware.opcount import remat_profile
        prof = remat_profile(4096)
        assert prof.counts["rng_bit"] == 4096
        assert remat_profile(4096, bits_per_elem=8).counts["rng_bit"] \
            == 4096 * 8

    def test_cheaper_than_keeping_tmr_replicas_scrubbed(self):
        from repro.hardware.opcount import remat_profile, scrub_profile
        # a remat repair of one 4096-bit row costs less than a full
        # 3-replica detection+vote pass over the same model
        remat = remat_profile(4096, elem_bytes=0.125)
        tmr = scrub_profile(4096, 2, replicas=3, repair=True)
        assert remat.total_ops() < tmr.total_ops() * 10


class TestCacheScrubProfile:
    def test_patrol_traffic_includes_parity(self):
        from repro.hardware.opcount import cache_scrub_profile
        prof = cache_scrub_profile(8000)
        assert prof.counts["mem_bytes"] == 8000 * 1.125

    def test_repair_fraction_composes_ecc_pass(self):
        from repro.hardware.opcount import cache_scrub_profile
        patrol = cache_scrub_profile(8000)
        repairing = cache_scrub_profile(8000, repair_fraction=0.25)
        assert repairing.total_ops() > patrol.total_ops()
        with pytest.raises(ValueError):
            cache_scrub_profile(8000, repair_fraction=-0.1)

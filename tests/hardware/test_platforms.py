"""Tests for the CPU/FPGA platform cost models."""

import pytest

from repro.hardware.opcount import OperationProfile, hd_hog_profile, hog_profile
from repro.hardware.platforms import CORTEX_A53, KINTEX7_FPGA, PLATFORMS, Platform


class TestPlatformMechanics:
    @pytest.fixture
    def toy(self):
        return Platform(
            name="toy", freq_hz=1e6,
            throughput={"bit": 10.0, "fp_mul": 1.0},
            energy_pj={"bit": 1.0, "fp_mul": 10.0},
            static_power_w=0.0,
            mem_bytes_per_cycle=100.0,
        )

    def test_cycles_sum_over_op_classes(self, toy):
        prof = OperationProfile({"bit": 100, "fp_mul": 10})
        assert toy.cycles(prof) == pytest.approx(100 / 10 + 10 / 1)

    def test_memory_bound_workload(self, toy):
        prof = OperationProfile({"bit": 10, "mem_bytes": 100000})
        assert toy.cycles(prof) == pytest.approx(1000.0)

    def test_time_uses_frequency(self, toy):
        prof = OperationProfile({"fp_mul": 1e6})
        assert toy.time(prof) == pytest.approx(1.0)

    def test_energy_sums_dynamic(self, toy):
        prof = OperationProfile({"bit": 1e12})
        assert toy.energy(prof) == pytest.approx(1.0)

    def test_static_power_adds(self):
        plat = Platform("s", 1e6, {"bit": 1.0}, {"bit": 0.0}, static_power_w=2.0)
        prof = OperationProfile({"bit": 1e6})  # takes 1 second
        assert plat.energy(prof) == pytest.approx(2.0)

    def test_stochastic_efficiency_applied(self, toy):
        toy.stochastic_efficiency = (10.0, 5.0)
        prof = OperationProfile({"bit": 100})
        assert toy.time(prof, stochastic=True) == pytest.approx(toy.time(prof) / 10)
        assert toy.energy(prof, stochastic=True) == pytest.approx(toy.energy(prof) / 5)


class TestShippedPlatforms:
    def test_registry(self):
        assert set(PLATFORMS) == {"cpu", "fpga"}

    def test_fpga_bit_parallelism_exceeds_cpu(self):
        assert KINTEX7_FPGA.throughput["bit"] > CORTEX_A53.throughput["bit"]

    def test_cpu_clock_faster_than_fpga(self):
        assert CORTEX_A53.freq_hz > KINTEX7_FPGA.freq_hz

    def test_fp_cheap_bits_cheaper(self):
        # on both platforms a bit op costs less energy than an fp32 multiply
        for plat in PLATFORMS.values():
            assert plat.energy_pj["bit"] < plat.energy_pj["fp_mul"]

    def test_hd_workload_prefers_fpga(self):
        # the HDC workload runs disproportionately faster on the FPGA than
        # the float workload does: the architectural story of Sec. 6.5
        hd = hd_hog_profile((48, 48), 4096)
        fp = hog_profile((48, 48))
        hd_gain = CORTEX_A53.time(hd) / KINTEX7_FPGA.time(hd)
        fp_gain = CORTEX_A53.time(fp) / KINTEX7_FPGA.time(fp)
        assert hd_gain > fp_gain

    def test_atan_is_expensive_on_cpu(self):
        assert CORTEX_A53.throughput["fp_atan"] < CORTEX_A53.throughput["fp_mul"]

"""Tests for the bit-error fault models."""

import numpy as np
import pytest

from repro.core.hypervector import random_hypervector
from repro.noise.bitflip import (
    FixedPointFaultInjector,
    HypervectorFaultInjector,
    flip_bipolar,
    flip_fixed_point,
)


class TestFlipBipolar:
    def test_rate_zero_is_copy(self):
        hv = random_hypervector(256, 0)
        out = flip_bipolar(hv, 0.0)
        assert (out == hv).all()
        assert out is not hv  # must not alias the input

    def test_rate_one_negates(self):
        hv = random_hypervector(256, 0)
        assert (flip_bipolar(hv, 1.0, 0) == -hv).all()

    def test_flip_fraction(self):
        hv = random_hypervector(50000, 0)
        out = flip_bipolar(hv, 0.1, 1)
        assert abs((out != hv).mean() - 0.1) < 0.01

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            flip_bipolar(np.ones(4, np.int8), 1.5)

    def test_reproducible(self):
        hv = random_hypervector(1000, 0)
        assert (flip_bipolar(hv, 0.2, 9) == flip_bipolar(hv, 0.2, 9)).all()

    def test_works_on_integer_bundles(self):
        bundle = np.array([5, -3, 0, 7], dtype=np.int16)
        out = flip_bipolar(bundle, 1.0, 0)
        assert (out == -bundle).all()

    def test_similarity_degrades_gracefully(self):
        # the holographic property: similarity shrinks linearly, not
        # catastrophically, with the flip rate
        hv = random_hypervector(20000, 0)
        sims = []
        for rate in (0.05, 0.2, 0.4):
            noisy = flip_bipolar(hv, rate, 2)
            sims.append(float((noisy * hv.astype(np.int64)).mean()))
        assert sims[0] > sims[1] > sims[2] > 0
        assert sims[0] == pytest.approx(1 - 2 * 0.05, abs=0.02)


class TestFlipFixedPoint:
    def test_rate_zero_near_identity(self):
        arr = np.linspace(-1, 1, 32)
        out = flip_fixed_point(arr, 0.0, bits=16)
        assert np.abs(out - arr).max() < 1e-3

    def test_errors_can_be_large(self):
        # a high-order bit flip in fixed point produces outliers far beyond
        # the data range - the fragility of the original representation
        arr = np.full(5000, 0.5)
        out = flip_fixed_point(arr, 0.05, bits=16, seed_or_rng=0)
        assert np.abs(out).max() > 2.0

    def test_preserves_shape(self):
        arr = np.zeros((4, 5, 6))
        assert flip_fixed_point(arr, 0.1, seed_or_rng=0).shape == (4, 5, 6)

    def test_mean_disturbance_grows_with_rate(self):
        arr = np.full(2000, 0.3)
        errs = [
            np.abs(flip_fixed_point(arr, r, 16, seed_or_rng=1) - arr).mean()
            for r in (0.01, 0.05, 0.2)
        ]
        assert errs[0] < errs[1] < errs[2]


class TestHypervectorFaultInjector:
    def test_only_selected_stages_corrupted(self):
        inj = HypervectorFaultInjector(0.5, stages=("gx",), seed_or_rng=0)
        hv = random_hypervector(1000, 0)
        assert (inj(hv, "pixels") == hv).all()
        assert (inj(hv, "gx") != hv).any()

    def test_call_counter(self):
        inj = HypervectorFaultInjector(0.1, seed_or_rng=0)
        hv = random_hypervector(64, 0)
        inj(hv, "pixels")
        inj(hv, "gx")
        inj(hv, "not-a-stage")
        assert inj.calls == 2

    def test_zero_rate_passthrough(self):
        inj = HypervectorFaultInjector(0.0, seed_or_rng=0)
        hv = random_hypervector(64, 0)
        assert (inj(hv, "pixels") == hv).all()
        assert inj.calls == 0


class TestFixedPointFaultInjector:
    def test_corrupts_selected_stage(self):
        inj = FixedPointFaultInjector(0.3, bits=16, stages=("magnitude",),
                                      seed_or_rng=0)
        arr = np.random.default_rng(0).random(100)
        assert np.allclose(inj(arr, "pixels"), arr)
        assert not np.allclose(inj(arr, "magnitude"), arr)

    def test_bits_parameter_respected(self):
        arr = np.full(2000, 0.5)
        coarse = FixedPointFaultInjector(1.0, bits=4, seed_or_rng=0)(arr, "pixels")
        # with all bits flipped, values land inside the 4-bit code range
        assert np.isfinite(coarse).all()


class TestStuckAt:
    def test_rate_zero_copy(self):
        hv = random_hypervector(128, 0)
        out = __import__("repro.noise.bitflip", fromlist=["stuck_at"]).stuck_at(hv, 0.0)
        assert (out == hv).all() and out is not hv

    def test_rate_one_all_stuck(self):
        from repro.noise.bitflip import stuck_at
        hv = random_hypervector(128, 0)
        assert (stuck_at(hv, 1.0, value=-1, seed_or_rng=0) == -1).all()

    def test_invalid_value(self):
        from repro.noise.bitflip import stuck_at
        with pytest.raises(ValueError):
            stuck_at(np.ones(4, np.int8), 0.1, value=0)

    def test_half_the_damage_of_flips(self):
        from repro.noise.bitflip import flip_bipolar, stuck_at
        hv = random_hypervector(50000, 0)
        rate = 0.2
        flip_damage = (flip_bipolar(hv, rate, 1) != hv).mean()
        stuck_damage = (stuck_at(hv, rate, 1, seed_or_rng=1) != hv).mean()
        assert abs(stuck_damage - flip_damage / 2) < 0.02

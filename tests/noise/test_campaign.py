"""Tests for the Table 2 robustness campaigns (small-scale)."""

import numpy as np
import pytest

from repro.learning import MLPClassifier
from repro.noise.campaign import (
    RobustnessResult,
    dnn_robustness,
    hdface_hyperspace_robustness,
    hdface_original_hog_robustness,
)
from repro.pipeline import HDFacePipeline, HOGPipeline


@pytest.fixture(scope="module")
def face_task():
    from repro.datasets import make_face_dataset
    xtr, ytr = make_face_dataset(48, size=24, seed_or_rng=0)
    xte, yte = make_face_dataset(24, size=24, seed_or_rng=1)
    return xtr, ytr, xte, yte


class TestRobustnessResult:
    def test_losses_relative_to_clean(self):
        res = RobustnessResult({0.0: 0.9, 0.1: 0.8})
        assert res.losses()[0.1] == pytest.approx(10.0)
        assert res.losses()[0.0] == 0.0

    def test_reference_accuracy_override(self):
        res = RobustnessResult({0.0: 0.9})
        res.reference_accuracy = 0.95
        assert res.losses()[0.0] == pytest.approx(5.0)

    def test_missing_clean_warns_and_falls_back(self):
        res = RobustnessResult({0.3: 0.4, 0.1: 0.5})
        with pytest.warns(UserWarning, match="lowest swept rate"):
            assert res.clean_accuracy == 0.5

    def test_empty_sweep_raises(self):
        with pytest.raises(KeyError):
            RobustnessResult().clean_accuracy

    def test_losses_sorted_by_rate(self):
        res = RobustnessResult({0.3: 0.6, 0.0: 0.9, 0.1: 0.8})
        assert list(res.losses()) == [0.0, 0.1, 0.3]

    def test_rate_results_independent_of_earlier_rates(self, face_task):
        # per-rate child generators: a swept point's result must not depend
        # on how many variates the earlier rates of the sweep consumed
        # (rate 0 consumes none, 0.1 consumes plenty)
        xtr, ytr, xte, yte = face_task
        hog_pipe = HOGPipeline("svm", 2, image_size=24)
        ftr, fte = hog_pipe.features(xtr), hog_pipe.features(xte)
        mlp = MLPClassifier(ftr.shape[1], 2, hidden=(16,), epochs=20,
                            seed_or_rng=0).fit(ftr, ytr)
        full = dnn_robustness(mlp, fte, yte, rates=(0.0, 0.3), bits=16,
                              seed_or_rng=5)
        partial = dnn_robustness(mlp, fte, yte, rates=(0.1, 0.3), bits=16,
                                 seed_or_rng=5)
        assert full[0.3] == partial[0.3]


class TestHDFaceHyperspace:
    def test_holographic_robustness(self, face_task):
        xtr, ytr, xte, yte = face_task
        pipe = HDFacePipeline(2, dim=2048, cell_size=8, magnitude="l1",
                              epochs=10, seed_or_rng=0).fit(xtr, ytr)
        res = hdface_hyperspace_robustness(
            pipe, xte, yte, rates=(0.0, 0.02, 0.30), seed_or_rng=0)
        assert set(res) == {0.0, 0.02, 0.30}
        losses = res.losses()
        # 2% flips should cost almost nothing; even 30% should not collapse
        # to chance given the holographic representation
        assert losses[0.02] <= 10.0
        assert res[0.30] >= 0.5 - 0.25  # stays above catastrophic failure

    def test_clean_rate_matches_pipeline_score(self, face_task):
        xtr, ytr, xte, yte = face_task
        pipe = HDFacePipeline(2, dim=1024, cell_size=8, magnitude="l1",
                              epochs=5, seed_or_rng=0).fit(xtr, ytr)
        res = hdface_hyperspace_robustness(pipe, xte, yte, rates=(0.0,))
        # extraction is stochastic, so allow re-extraction jitter
        assert res[0.0] == pytest.approx(pipe.score(xte, yte), abs=0.15)


class TestOriginalHOG:
    def test_fixed_point_errors_hurt_more(self, face_task):
        xtr, ytr, xte, yte = face_task
        pipe = HOGPipeline("hdc", 2, image_size=24, dim=2048,
                           seed_or_rng=0).fit(xtr, ytr)
        res = hdface_original_hog_robustness(
            pipe, xte, yte, rates=(0.0, 0.1), bits=16, seed_or_rng=0)
        # fragile original representation: 10% bit errors cause real damage
        assert res[0.1] < res[0.0]


class TestDNNRobustness:
    def test_loss_grows_with_rate(self, face_task):
        xtr, ytr, xte, yte = face_task
        hog_pipe = HOGPipeline("svm", 2, image_size=24)
        ftr = hog_pipe.features(xtr)
        fte = hog_pipe.features(xte)
        mlp = MLPClassifier(ftr.shape[1], 2, hidden=(32,), epochs=30,
                            seed_or_rng=0).fit(ftr, ytr)
        res = dnn_robustness(mlp, fte, yte, rates=(0.0, 0.05, 0.3), bits=16,
                             seed_or_rng=0)
        assert res[0.3] <= res[0.0]

    def test_reference_accuracy_recorded(self, face_task):
        xtr, ytr, xte, yte = face_task
        hog_pipe = HOGPipeline("svm", 2, image_size=24)
        ftr, fte = hog_pipe.features(xtr), hog_pipe.features(xte)
        mlp = MLPClassifier(ftr.shape[1], 2, hidden=(16,), epochs=20,
                            seed_or_rng=0).fit(ftr, ytr)
        full = mlp.score(fte, yte)
        res = dnn_robustness(mlp, fte, yte, rates=(0.0,), bits=4,
                             reference_accuracy=full, seed_or_rng=0)
        assert res.reference_accuracy == pytest.approx(full)
        # the 0% cell now reports pure quantization cost (>= 0)
        assert res.losses()[0.0] >= 0.0

"""Tests for the detection-level fault campaign (noise/campaign.py)."""

import numpy as np
import pytest

from repro.noise import DetectionRobustnessResult, detection_robustness
from repro.pipeline import HDFacePipeline
from repro.pipeline.detector import make_scene


@pytest.fixture(scope="module")
def face_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="module")
def scenes():
    return [make_scene(48, [(4, 4), (22, 20)], 24, seed_or_rng=10 + i)
            for i in range(3)]


@pytest.fixture(scope="module")
def sweep(face_pipe, scenes):
    return detection_robustness(face_pipe, scenes, rates=(0.0, 0.05),
                                window=24, backends=("dense", "packed"),
                                seed_or_rng=7)


class TestSweepStructure:
    def test_both_backends_and_all_rates(self, sweep):
        assert set(sweep) == {"dense", "packed"}
        for backend in sweep:
            assert set(sweep[backend]) == {0.0, 0.05}

    def test_rows_carry_quality_metrics(self, sweep):
        for _, _, row in sweep.rows():
            assert 0.0 <= row["recall"] <= 1.0
            assert 0.0 <= row["precision"] <= 1.0
            assert 0.0 <= row["mean_iou"] <= 1.0
            assert row["n_truth"] == 6  # 3 scenes x 2 faces

    def test_clean_run_finds_faces(self, sweep):
        for backend in ("dense", "packed"):
            assert sweep.clean(backend)["recall"] > 0.0

    def test_payload_is_json_ready(self, sweep):
        import json
        payload = sweep.payload()
        assert set(payload) == {"config", "rows"}
        assert payload["config"]["n_scenes"] == 3
        assert len(payload["rows"]) == 4
        json.dumps(payload)  # must serialize

    def test_recall_drop_nonnegative_for_clean(self, sweep):
        for backend in ("dense", "packed"):
            assert sweep.recall_drop(backend) >= 0.0


class TestValidation:
    def test_unknown_attack_rejected(self, face_pipe, scenes):
        with pytest.raises(ValueError):
            detection_robustness(face_pipe, scenes, (0.0,), window=24,
                                 attack=("voltage",))

    def test_even_guard_replicas_rejected(self, face_pipe, scenes):
        with pytest.raises(ValueError):
            detection_robustness(face_pipe, scenes, (0.0,), window=24,
                                 guard_replicas=2)


class TestGuardedSweep:
    def test_guard_absorbs_model_corruption(self, face_pipe, scenes):
        # model-only attack with a guard: one corrupted replica is repaired
        # at inference, so every rate reproduces the clean detections
        res = detection_robustness(
            face_pipe, scenes, rates=(0.0, 0.1), window=24,
            backends=("packed",), seed_or_rng=7, attack=("model",),
            guard_replicas=3)
        clean = res["packed"][0.0]
        assert res["packed"][0.1] == clean
        assert res.recall_drop("packed") == 0.0


class TestResultHelpers:
    def test_clean_prefers_rate_zero(self):
        res = DetectionRobustnessResult(
            {"dense": {0.0: {"recall": 0.9}, 0.01: {"recall": 0.5}}})
        assert res.clean("dense")["recall"] == 0.9

    def test_clean_falls_back_to_lowest_rate(self):
        res = DetectionRobustnessResult(
            {"dense": {0.05: {"recall": 0.7}, 0.01: {"recall": 0.8}}})
        assert res.clean("dense")["recall"] == 0.8

    def test_rows_sorted(self):
        res = DetectionRobustnessResult({
            "packed": {0.05: {"recall": 1.0}, 0.0: {"recall": 1.0}},
            "dense": {0.0: {"recall": 1.0}},
        })
        assert [(b, r) for b, r, _ in res.rows()] == [
            ("dense", 0.0), ("packed", 0.0), ("packed", 0.05)]

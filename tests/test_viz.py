"""Tests for the headless rendering helpers."""

import numpy as np
import pytest

from repro.viz.render import ascii_image, ascii_map, render_detection, write_pgm


class TestAsciiImage:
    def test_dark_and_bright(self):
        out = ascii_image(np.zeros((4, 8)))
        assert set(out.replace("\n", "")) == {" "}
        out = ascii_image(np.ones((4, 8)))
        assert set(out.replace("\n", "")) == {"@"}

    def test_width_limits_columns(self):
        out = ascii_image(np.random.default_rng(0).random((16, 64)), width=16)
        assert max(len(line) for line in out.splitlines()) <= 16

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            ascii_image(np.zeros(8))


class TestAsciiMap:
    def test_boolean_map(self):
        out = ascii_map(np.array([[True, False], [False, True]]))
        assert out == "#.\n.#"

    def test_float_map_formatting(self):
        out = ascii_map(np.array([[0.5]]))
        assert out == "+0.50"

    def test_custom_chars(self):
        out = ascii_map(np.array([[True]]), true_char="X")
        assert out == "X"

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            ascii_map(np.zeros(4, dtype=bool))


class TestWritePgm:
    def test_roundtrip_header_and_bytes(self, tmp_path):
        img = np.linspace(0, 1, 12).reshape(3, 4)
        path = tmp_path / "out.pgm"
        write_pgm(path, img)
        data = path.read_bytes()
        assert data.startswith(b"P5\n4 3\n255\n")
        pixels = np.frombuffer(data.split(b"255\n", 1)[1], dtype=np.uint8)
        assert pixels.shape == (12,)
        assert pixels[-1] == 255 and pixels[0] == 0

    def test_non_2d_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros(4))


class TestRenderDetection:
    def test_detected_windows_brightened(self):
        from repro.pipeline.detector import DetectionMap
        scene = np.zeros((32, 32))
        det = DetectionMap(
            scores=np.array([[1.0, -1.0], [-1.0, -1.0]]),
            detections=np.array([[True, False], [False, False]]),
            stride=16, window=16,
        )
        out = render_detection(scene, det)
        assert out[:16, :16].mean() > 0.2
        assert out[16:, 16:].mean() == 0.0

    def test_original_scene_untouched(self):
        from repro.pipeline.detector import DetectionMap
        scene = np.zeros((16, 16))
        det = DetectionMap(np.ones((1, 1)), np.ones((1, 1), bool), 16, 16)
        render_detection(scene, det)
        assert scene.sum() == 0.0

"""Tests for the continuous-BER memory-RAS soak (runtime/chaos.py)."""

import numpy as np
import pytest

from repro.pipeline import HDFacePipeline, PyramidDetector, SlidingWindowDetector
from repro.reliability import GuardedClassModel
from repro.runtime import ResilientVideoDetector, run_ber_soak
from repro.runtime.chaos import SOAK_SURFACES

WINDOW, STRIDE = 24, 8


@pytest.fixture(scope="module")
def ras_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1", epochs=5,
                          seed_or_rng=0, store_policy="verify").fit(xtr, ytr)


@pytest.fixture
def make_ras_runtime(ras_pipe):
    def factory(ladder=None, budget=None):
        det = SlidingWindowDetector(ras_pipe, window=WINDOW, stride=STRIDE,
                                    backend="packed", scrub=True)
        runtime = ResilientVideoDetector(
            PyramidDetector(det, score_threshold=0.0), ladder=ladder,
            budget=budget if budget else 10.0, stall_timeout=None,
            scrub_budget=0)
        guard = GuardedClassModel(runtime.base.packed_model(), replicas=1,
                                  check="ecc", seed_or_rng=0)
        runtime.model_override = guard
        runtime.scrubber.add_guard(guard)
        return runtime
    return factory


class TestBerSoak:
    def test_protected_runtime_survives_sustained_ber(self, make_ras_runtime,
                                                      video):
        frames, truth = video
        report = run_ber_soak(make_ras_runtime, frames, truth, ber=2e-4,
                              seed=0)
        assert report["passed"], report["gates"]
        assert sum(report["injected"].values()) > 0
        assert report["detections"] > 0
        assert report["repairs"] > 0
        assert report["cache_residual"]["mismatches"] == 0
        assert report["recall_drop"] <= report["max_recall_drop"]
        # the report must be JSON-clean for the bench/CI heredoc gates
        import json
        json.dumps(report, default=float)

    def test_surface_subset_only_touches_that_surface(self, make_ras_runtime,
                                                      video):
        frames, truth = video
        report = run_ber_soak(make_ras_runtime, frames, truth, ber=2e-4,
                              surfaces=("model",), seed=1)
        assert report["passed"], report["gates"]
        assert set(report["injected"]) == {"model"}

    def test_unknown_surface_rejected(self, make_ras_runtime, video):
        frames, truth = video
        with pytest.raises(ValueError, match="unknown soak surfaces"):
            run_ber_soak(make_ras_runtime, frames, truth,
                         surfaces=("cache", "dram"))

    def test_soak_surfaces_vocabulary(self):
        assert set(SOAK_SURFACES) == {"cache", "items", "model"}

"""Tests for the online-adaptation loop (runtime/adapt.py + serving adapt=)."""

import numpy as np
import pytest

from repro.runtime import ResilientVideoDetector
from repro.runtime.adapt import DriftDetector, OnlineAdapter


class ForcedDrift:
    """Drift-detector stub pinned to one state (test hook)."""

    def __init__(self, state="drifting"):
        self._state = state

    @property
    def state(self):
        return self._state

    def observe(self, score):
        return self._state

    def stats(self):
        return {"state": self._state, "shift": 0.0, "observed": 0,
                "reference_mean": 0.0, "recent_mean": 0.0, "transitions": []}


class TestDriftDetector:
    def test_warmup_then_stable_on_flat_scores(self):
        drift = DriftDetector(warmup=5, window=10)
        states = [drift.observe(0.2) for _ in range(12)]
        assert states[:4] == ["warmup"] * 4
        assert states[-1] == "stable"
        assert drift.shift() == pytest.approx(0.0)

    def test_score_drop_escalates_to_drifting_then_frozen(self):
        drift = DriftDetector(warmup=5, window=4, drift_threshold=0.1,
                              freeze_threshold=0.8)
        for _ in range(5):
            drift.observe(0.2)
        for _ in range(4):
            assert drift.observe(0.16) == "drifting"   # 20% drop
        for _ in range(4):
            drift.observe(0.01)                        # 95% drop fills window
        assert drift.state == "frozen"
        assert drift.shift() > 0.8

    def test_recovery_walks_back_to_stable(self):
        drift = DriftDetector(warmup=3, window=3, drift_threshold=0.1,
                              freeze_threshold=0.8)
        for _ in range(3):
            drift.observe(0.2)
        for _ in range(3):
            drift.observe(0.1)
        assert drift.state == "drifting"
        for _ in range(3):
            drift.observe(0.2)
        assert drift.state == "stable"
        kinds = [(a, b) for _, a, b in drift.transitions]
        assert ("stable", "drifting") in kinds or \
            ("warmup", "drifting") in kinds
        assert ("drifting", "stable") in kinds

    def test_transitions_are_recorded_with_indices(self):
        drift = DriftDetector(warmup=2, window=2)
        drift.observe(1.0)
        drift.observe(1.0)
        drift.observe(0.0)
        assert drift.transitions
        assert drift.transitions[0][0] >= 2

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            DriftDetector(warmup=0)
        with pytest.raises(ValueError):
            DriftDetector(drift_threshold=0.9, freeze_threshold=0.5)


class TestServingAdapt:
    def test_adapt_requires_packed_backend(self, make_runtime):
        with pytest.raises(ValueError, match="packed"):
            make_runtime(backend="dense", adapt=True)

    def test_static_scene_proposes_nothing(self, make_runtime, video):
        frames, _ = video
        static = [frames[0]] * 6
        runtime = make_runtime(adapt=True)
        list(runtime.run(static))
        adapt = runtime.stats()["adapt"]
        assert adapt["proposals"] == 0
        assert adapt["drift"]["state"] in ("warmup", "stable")

    def test_static_scene_detections_bitwise_match_frozen(self, make_runtime,
                                                          video):
        frames, _ = video
        static = [frames[0]] * 5
        adaptive = make_runtime(adapt=True)
        frozen = make_runtime()
        for a, b in zip(adaptive.run(static), frozen.run(static)):
            assert a.detections == b.detections
            assert a.mode == b.mode

    def test_drifting_state_harvests_and_applies(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime(
            adapt=True, adapt_kwargs={"drift": ForcedDrift("drifting")})
        list(runtime.run(frames))
        adapt = runtime.stats()["adapt"]
        assert adapt["harvested"] > 0
        assert adapt["proposals"] > 0
        assert adapt["applied"] > 0
        assert adapt["rollbacks"] == 0

    def test_frozen_state_skips(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime(
            adapt=True, adapt_kwargs={"drift": ForcedDrift("frozen")})
        list(runtime.run(frames))
        adapt = runtime.stats()["adapt"]
        assert adapt["proposals"] == 0
        assert adapt["frozen_skips"] > 0

    def test_profiler_counters_surface_in_table(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime(
            adapt=True, adapt_kwargs={"drift": ForcedDrift("drifting")})
        list(runtime.run(frames))
        assert runtime.profiler.counters["adapt_proposals"] > 0
        table = runtime.profiler.table()
        assert "adapt_applied" in table
        assert "adapt_state" in table

    def test_prebuilt_model_is_adopted(self, make_runtime, serve_pipe):
        from repro.reliability import AdaptiveGuardedModel
        from tests.runtime.conftest import make_detector
        det = make_detector(serve_pipe)
        model = AdaptiveGuardedModel(det.detector.packed_model(),
                                     seed_or_rng=0)
        runtime = ResilientVideoDetector(
            det, budget=10.0, stall_timeout=None, adapt=True,
            adapt_kwargs={"model": model})
        assert runtime.adapter.model is model
        assert runtime.model_override is model

    def test_model_kwargs_with_prebuilt_model_rejected(self, make_runtime,
                                                       serve_pipe):
        from repro.reliability import AdaptiveGuardedModel
        from tests.runtime.conftest import make_detector
        det = make_detector(serve_pipe)
        model = AdaptiveGuardedModel(det.detector.packed_model(),
                                     seed_or_rng=0)
        with pytest.raises(ValueError, match="leftover"):
            ResilientVideoDetector(det, stall_timeout=None, adapt=True,
                                   adapt_kwargs={"model": model, "prior": 8})


class TestChaosArming:
    def test_label_poison_rejected_and_rolled_back(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime(adapt=True)
        model = runtime.adapter.model
        clean_rows = model.replicas.copy()
        runtime.adapter.poison_next("label")
        results = list(runtime.run(frames))
        adapt = runtime.stats()["adapt"]
        assert adapt["poison_injected"] == 1
        assert adapt["poison_rejected"] == 1
        assert adapt["rollbacks"] >= 1
        # the served model never absorbed the poison
        assert np.array_equal(model.replicas, clean_rows)
        assert model.scrub(force=True) == 0
        # and the stream kept detecting through the attack
        assert any(r.detections for r in results)

    def test_replica_poison_outvoted(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime(adapt=True)
        runtime.adapter.poison_next("replica")
        list(runtime.run(frames))
        adapt = runtime.stats()["adapt"]
        assert adapt["poison_injected"] == 1
        assert adapt["poison_outvoted"] == 1
        assert adapt["outvoted"] >= 1
        # after outvoting, every replica's counters agree again
        model = runtime.adapter.model
        for cnt in model.counters[1:]:
            assert np.array_equal(cnt.materialize(),
                                  model.counters[0].materialize())

    def test_update_storm_is_throttled(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime(
            adapt=True, adapt_kwargs={"drift": ForcedDrift("drifting"),
                                      "max_updates_per_frame": 2})
        runtime.adapter.storm_next(10)
        list(runtime.run(frames))
        adapt = runtime.stats()["adapt"]
        assert adapt["storm_suppressed"] >= 8
        # the storm never lands more than the per-frame budget at once
        assert adapt["proposals"] <= 2 * len(frames)

    def test_bad_poison_kind_rejected(self, make_runtime, video):
        runtime = make_runtime(adapt=True)
        with pytest.raises(ValueError):
            runtime.adapter.poison_next("gamma-ray")

"""Planner tests: properties of plan choice, cost refit, and the ladder.

The Hypothesis section pins the planner's contract for *random*
deadlines and cost tables:

* feasibility - the chosen plan's predicted cost never exceeds the
  budget when any feasible candidate exists (the over-budget escape
  hatch fires only when every candidate is over);
* monotonicity - plan quality never decreases as the budget grows;
* refit is a fixed point - refitting from unchanged measurements
  changes nothing, so the measure -> refit -> replan loop converges.
"""

import math
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.opcount import OP_CLASSES
from repro.pipeline.plan import Plan
from repro.runtime import (CostModel, DeadlineScheduler, ExecutionPlanner,
                           PlannerLadder, Rung)

pytestmark = pytest.mark.tier1

WINDOW = 24
STRIDE = 8


def make_planner(dim=512, stage_scale=None, default_scale=1.0,
                 frame=(96, 96), **kw):
    model = CostModel(stage_scale=stage_scale, default_scale=default_scale)
    return ExecutionPlanner(WINDOW, STRIDE, dim, cost_model=model,
                            frame_shape=frame, **kw)


# ----------------------------------------------------------------------
# hypothesis strategies
# ----------------------------------------------------------------------
STAGES = ("fields", "cell_grid", "assemble", "classify", "delta_fields",
          "cascade", "perwindow", "legacy_scan")

scales = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False,
                   allow_infinity=False)
cost_tables = st.fixed_dictionaries(
    {}, optional={name: scales for name in STAGES})
budgets = st.floats(min_value=1e-9, max_value=10.0, allow_nan=False,
                    allow_infinity=False)
dims = st.sampled_from((256, 512, 1024))
frames = st.integers(min_value=WINDOW, max_value=192).map(lambda s: (s, s))

op_counts = st.dictionaries(
    st.sampled_from(OP_CLASSES),
    st.floats(min_value=1.0, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=4)
measurements = st.dictionaries(
    st.sampled_from(STAGES),
    st.tuples(st.floats(min_value=1e-5, max_value=10.0, allow_nan=False),
              op_counts),
    min_size=1, max_size=5)


def fake_profiler(measured):
    """A Profiler stand-in: ``stats`` of (seconds, ops) per stage."""
    return SimpleNamespace(stats={
        name: SimpleNamespace(seconds=sec, ops=dict(ops))
        for name, (sec, ops) in measured.items()})


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
class TestPlannerProperties:
    @settings(max_examples=30, deadline=None)
    @given(budget=budgets, table=cost_tables, scale=scales, dim=dims,
           frame=frames)
    def test_budget_respected_when_feasible(self, budget, table, scale,
                                            dim, frame):
        planner = make_planner(dim, stage_scale=table, default_scale=scale,
                               frame=frame)
        costs = [planner.estimate(p, frame) for p in planner.candidates(frame)]
        chosen = planner.plan(budget, frame)
        cost = planner.estimate(chosen, frame)
        floor = planner.escape_slack * min(costs)
        if budget >= floor:
            # attainable budget: the chosen plan must fit it
            assert cost <= budget
        else:
            # escape hatch: ship the best plan near the cost floor
            assert cost <= floor

    @settings(max_examples=30, deadline=None)
    @given(b1=budgets, b2=budgets, table=cost_tables, scale=scales, dim=dims)
    def test_quality_monotone_in_budget(self, b1, b2, table, scale, dim):
        lo, hi = sorted((b1, b2))
        planner = make_planner(dim, stage_scale=table, default_scale=scale)
        q_lo = planner.quality(planner.plan(lo))
        q_hi = planner.quality(planner.plan(hi))
        assert q_lo <= q_hi + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(measured=measurements)
    def test_refit_is_a_fixed_point(self, measured):
        model = CostModel()
        prof = fake_profiler(measured)
        first = model.refit(prof)
        scale_after_one = dict(model.stage_scale)
        default_after_one = model.default_scale
        second = model.refit(prof)
        assert second == first
        assert model.stage_scale == scale_after_one
        assert model.default_scale == default_after_one
        for name, scale in first.items():
            assert math.isfinite(scale) and scale > 0

    @settings(max_examples=20, deadline=None)
    @given(budget=budgets, measured=measurements, dim=dims)
    def test_replan_after_noop_refit_changes_nothing(self, budget, measured,
                                                     dim):
        planner = make_planner(dim)
        planner.refit(fake_profiler(measured))
        ladder = planner.ladder(budget, steps=3)
        before = [r.plan for r in ladder.rungs]
        planner.refit(fake_profiler(measured))
        assert ladder.replan() == 0
        assert [r.plan for r in ladder.rungs] == before

    @settings(max_examples=30, deadline=None)
    @given(budget=budgets, table=cost_tables, dim=dims)
    def test_chosen_plan_is_deterministic(self, budget, table, dim):
        a = make_planner(dim, stage_scale=table).plan(budget)
        b = make_planner(dim, stage_scale=table).plan(budget)
        assert a == b


# ----------------------------------------------------------------------
# deterministic unit tests
# ----------------------------------------------------------------------
class TestCostModel:
    def test_refit_scales_toward_measurements(self):
        model = CostModel()
        prof = fake_profiler({"classify": (2.0, {"word64": 1e9})})
        raw = model.raw_time(
            __import__("repro.hardware.opcount", fromlist=["x"])
            .profile_from_counts({"word64": 1e9}, "classify"))
        fitted = model.refit(prof)
        assert fitted["classify"] == pytest.approx(2.0 / raw)
        assert model.stage_scale["classify"] == fitted["classify"]
        assert model.refits == 1

    def test_empty_profiler_is_noop(self):
        model = CostModel()
        assert model.refit(SimpleNamespace(stats={})) == {}
        assert model.refits == 0 and model.default_scale == 1.0

    def test_state_snapshot(self):
        state = CostModel(stage_scale={"fields": 2.0}).state()
        assert state["stage_scale"] == {"fields": 2.0}
        assert state["refits"] == 0


class TestExecutionPlanner:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            make_planner().plan(0.0)

    def test_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            ExecutionPlanner(0, STRIDE, 512)
        with pytest.raises(ValueError):
            ExecutionPlanner(WINDOW, STRIDE, 512, scale_step=1.0)

    def test_candidates_quality_sorted(self):
        planner = make_planner()
        cands = planner.candidates()
        qualities = [planner.quality(p) for p in cands]
        assert qualities == sorted(qualities, reverse=True)
        assert qualities[0] == 1.0  # full-fidelity plan leads

    def test_loose_budget_picks_full_quality(self):
        planner = make_planner()
        plan = planner.plan(1e9)
        assert planner.quality(plan) == 1.0
        assert plan.stride is None and plan.max_words is None

    def test_tight_budget_sheds_work(self):
        planner = make_planner()
        plan = planner.plan(1e-9)
        assert planner.quality(plan) < 1.0

    def test_unattainable_budget_ships_best_near_floor(self):
        """The escape hatch maximizes quality within slack of the floor.

        With extraction-dominated costs the strict cost minimum is a
        blunt plan (coarse stride, truncated words) only ~2% cheaper
        than a near-full-quality keyframe plan; an unattainably small
        budget must ship the latter, not the former.
        """
        planner = make_planner()
        costed = [(planner.estimate(p), p) for p in planner.candidates()]
        floor = planner.escape_slack * min(c for c, _ in costed)
        chosen = planner.plan(1e-12)
        assert planner.estimate(chosen) <= floor
        best_near_floor = max((planner.quality(p) for c, p in costed
                               if c <= floor))
        assert planner.quality(chosen) == best_near_floor
        bluntest = min(costed, key=lambda cp: cp[0])[1]
        assert planner.quality(chosen) >= planner.quality(bluntest)

    def test_dense_candidates_never_truncate(self):
        planner = make_planner(backend="dense")
        assert all(p.max_words is None for p in planner.candidates())

    def test_from_detector_requires_pyramid(self):
        with pytest.raises(ValueError):
            ExecutionPlanner.from_detector(object())

    def test_rung_from_plan_round_trip(self):
        planner = make_planner()
        plan = Plan(name="r", backend="packed", engine="shared",
                    stride=2 * STRIDE, max_levels=2, max_words=4,
                    keyframe_every=3)
        rung = planner.rung_from_plan(plan)
        assert isinstance(rung, Rung)
        assert rung.stride_scale == 2 and rung.max_levels == 2
        assert rung.word_budget == 4 and rung.keyframe_every == 3
        assert rung.plan is plan

    def test_stats(self):
        planner = make_planner()
        planner.plan(1.0)
        s = planner.stats()
        assert s["plans_chosen"] == 1 and s["dim"] == 512


class TestPlannerLadder:
    def test_budgets_must_shrink(self):
        planner = make_planner()
        with pytest.raises(ValueError):
            PlannerLadder(planner, [0.1, 0.2])
        with pytest.raises(ValueError):
            PlannerLadder(planner, [])
        with pytest.raises(ValueError):
            PlannerLadder(planner, [0.1, -0.1])

    def test_ladder_rungs_degrade(self):
        planner = make_planner()
        ladder = planner.ladder(1e-3, steps=4)
        assert len(ladder) == 4
        qualities = [planner.quality(r.plan) for r in ladder.rungs]
        assert qualities == sorted(qualities, reverse=True)
        assert [r.name for r in ladder.rungs] == \
            [f"plan{i}" for i in range(4)]

    def test_replan_updates_rungs_after_refit(self):
        planner = make_planner()
        ladder = planner.ladder(1e-3, steps=4)
        # a 100x slower machine: everything must shed harder (or stay)
        planner.cost_model.stage_scale.clear()
        planner.cost_model.default_scale *= 100.0
        changed = ladder.replan()
        assert changed >= 0
        new_q = [planner.quality(r.plan) for r in ladder.rungs]
        assert new_q == sorted(new_q, reverse=True)

    def test_scheduler_plan_budget(self):
        planner = make_planner()
        ladder = planner.ladder(1e-3, steps=3)
        sched = DeadlineScheduler(1e-3, ladder)
        assert sched.plan_budget(0) == pytest.approx(1e-3)
        assert sched.plan_budget(2) == pytest.approx(1e-3 * 0.45 ** 2)
        assert sched.plan_budget() == sched.plan_budget(sched.rung)

    def test_plan_budget_none_for_hand_ladders(self):
        from repro.runtime import default_ladder
        sched = DeadlineScheduler(1e-3, default_ladder("packed"))
        assert sched.plan_budget() is None


class TestPlanDataclass:
    def test_validation(self):
        with pytest.raises(ValueError):
            Plan(backend="quantum")
        with pytest.raises(ValueError):
            Plan(backend="dense", max_words=4)
        with pytest.raises(ValueError):
            Plan(backend="packed", stage_words=(4, 4))
        with pytest.raises(ValueError):
            Plan(workers=0)

    def test_dict_round_trip(self):
        plan = Plan(name="p", backend="packed", stride=16,
                    level_strides=(8, None, 24), max_levels=2, max_words=4,
                    stage_words=(2, 4), keyframe_every=3, workers=2)
        again = Plan.from_dict(plan.to_dict())
        assert again == plan

    def test_stride_for_and_prefix_words(self):
        plan = Plan(backend="packed", stride=16, level_strides=(8, None),
                    max_words=4)
        assert plan.stride_for(0) == 8
        assert plan.stride_for(1) == 16  # None falls back to stride
        assert plan.stride_for(5) == 16  # beyond the list too
        assert plan.prefix_words(512) == 4
        assert Plan(backend="packed").prefix_words(512) == 8

    def test_from_rung(self):
        rung = Rung("deep", stride_scale=2, max_levels=2, word_budget=4,
                    keyframe_every=3)
        plan = Plan.from_rung(rung, backend="packed", base_stride=STRIDE,
                              dim=512)
        assert plan.name == "deep" and plan.stride == 2 * STRIDE
        assert plan.max_levels == 2 and plan.max_words == 4
        assert plan.keyframe_every == 3

    def test_describe_mentions_sheds(self):
        text = Plan(backend="packed", stride=16, max_words=4).describe()
        assert "stride=16" in text and "max_words=4" in text

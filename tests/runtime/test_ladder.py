"""Tests for the degradation ladder and the deadline scheduler."""

import pytest

from repro.core.hypervector import packed_words
from repro.runtime import (
    DeadlineScheduler,
    DegradationLadder,
    Rung,
    default_ladder,
)


class TestRung:
    def test_validation(self):
        with pytest.raises(ValueError):
            Rung("bad", stride_scale=0)
        with pytest.raises(ValueError):
            Rung("bad", max_levels=0)
        with pytest.raises(ValueError):
            Rung("bad", prefix_fraction=0.0)
        with pytest.raises(ValueError):
            Rung("bad", prefix_fraction=1.5)
        with pytest.raises(ValueError):
            Rung("bad", keyframe_every=0)

    def test_prefix_words(self):
        assert Rung("full").prefix_words(512) == packed_words(512)
        assert Rung("half", prefix_fraction=0.5).prefix_words(512) == 4
        # tiny fractions never round down to zero words
        assert Rung("sliver", prefix_fraction=0.001).prefix_words(512) == 1

    def test_rungs_are_frozen(self):
        with pytest.raises(AttributeError):
            Rung("full").stride_scale = 2


class TestDefaultLadder:
    def test_packed_ladder_uses_the_truncation_dial(self):
        ladder = default_ladder("packed")
        names = [r.name for r in ladder.rungs]
        assert names == ["full", "coarse", "truncated", "skip"]
        fractions = [r.prefix_fraction for r in ladder.rungs]
        assert fractions[0] == 1.0
        assert fractions[2] < 1.0 and fractions[3] < fractions[2]
        assert ladder.rungs[-1].keyframe_every > 1

    def test_dense_ladder_has_no_truncation(self):
        ladder = default_ladder("dense")
        assert len(ladder) == 4
        assert all(r.prefix_fraction == 1.0 for r in ladder.rungs)


class TestDegradationLadder:
    def test_needs_rungs_and_unique_names(self):
        with pytest.raises(ValueError):
            DegradationLadder([])
        with pytest.raises(ValueError):
            DegradationLadder([Rung("a"), Rung("a")])

    def test_clamp(self):
        ladder = default_ladder()
        assert ladder.clamp(-3) == 0
        assert ladder.clamp(99) == len(ladder) - 1

    def test_record_transition(self):
        ladder = default_ladder()
        ladder.record_transition(7, 0, 1)
        assert ladder.transitions == [
            {"frame": 7, "from": "full", "to": "coarse"}]


class TestDeadlineScheduler:
    def _sched(self, **kwargs):
        kwargs.setdefault("degrade_after", 2)
        kwargs.setdefault("recover_after", 3)
        return DeadlineScheduler(1.0, default_ladder(), **kwargs)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineScheduler(0.0, default_ladder())
        with pytest.raises(ValueError):
            DeadlineScheduler(1.0, default_ladder(), degrade_after=0)
        with pytest.raises(ValueError):
            DeadlineScheduler(1.0, default_ladder(), headroom=0.0)

    def test_degrades_after_consecutive_misses_only(self):
        s = self._sched()
        assert s.observe(2.0) == 0          # one miss: hold
        assert s.observe(0.1) == 0          # run broken
        assert s.observe(2.0) == 0
        assert s.observe(2.0) == 1          # two consecutive: degrade
        assert s.deadline_misses == 3

    def test_recovers_after_sustained_headroom(self):
        s = self._sched()
        s.set_rung(2)
        s.observe(0.5)
        s.observe(0.5)
        assert s.rung == 2
        assert s.observe(0.5) == 1          # third under-headroom frame
        assert s.ladder.transitions[-1]["to"] == "coarse"

    def test_hysteresis_band_holds_and_resets_runs(self):
        s = self._sched()
        s.set_rung(1)
        s.observe(0.5)
        s.observe(0.5)
        s.observe(0.8)                      # in (headroom, budget]: hold
        assert s.rung == 1 and s.under_run == 0
        s.observe(0.5)
        s.observe(0.5)
        assert s.rung == 1                  # the band reset the run

    def test_saturates_at_the_ends(self):
        s = self._sched()
        for _ in range(20):
            s.observe(5.0)
        assert s.rung == len(s.ladder) - 1
        for _ in range(40):
            s.observe(0.01)
        assert s.rung == 0

    def test_set_rung_clamps_and_records(self):
        s = self._sched()
        assert s.set_rung(99) == len(s.ladder) - 1
        assert s.ladder.transitions[-1]["to"] == "skip"
        assert s.set_rung(s.rung) == s.rung  # no-op records nothing new
        assert len(s.ladder.transitions) == 1

    def test_stats_snapshot(self):
        s = self._sched()
        s.observe(2.0)
        stats = s.stats()
        assert stats["rung_name"] == "full"
        assert stats["deadline_misses"] == 1
        assert stats["over_run"] == 1


class TestMinRungFloor:
    def _sched(self, **kwargs):
        kwargs.setdefault("recover_after", 2)
        return DeadlineScheduler(1.0, default_ladder(), **kwargs)

    def test_raising_floor_degrades_immediately(self):
        s = self._sched()
        assert s.set_min_rung(2) == 2
        assert s.rung == 2
        assert s.ladder.transitions[-1]["to"] == s.ladder.rungs[2].name

    def test_recovery_stops_at_the_floor(self):
        s = self._sched()
        s.set_min_rung(2)
        for _ in range(50):
            s.observe(0.01)
        assert s.rung == 2                  # healthy, but floored
        s.set_min_rung(0)
        for _ in range(50):
            s.observe(0.01)
        assert s.rung == 0                  # floor lowered: climbs home

    def test_floor_below_current_rung_is_passive(self):
        s = self._sched()
        s.set_rung(3)
        before = len(s.ladder.transitions)
        assert s.set_min_rung(1) == 1
        assert s.rung == 3                  # no forced change
        assert len(s.ladder.transitions) == before

    def test_floor_clamps_and_reports(self):
        s = self._sched()
        assert s.set_min_rung(99) == len(s.ladder) - 1
        assert s.stats()["min_rung"] == len(s.ladder) - 1


class TestFleetScheduler:
    def _fleet(self, names, **kwargs):
        from repro.runtime import FleetScheduler
        kwargs.setdefault("degrade_after", 2)
        kwargs.setdefault("recover_after", 3)
        fleet = FleetScheduler(**kwargs)
        scheds = {}
        for name in names:
            scheds[name] = DeadlineScheduler(1.0, default_ladder())
            fleet.register(name, scheds[name])
        return fleet, scheds

    def test_validation(self):
        from repro.runtime import FleetScheduler
        with pytest.raises(ValueError):
            FleetScheduler(pressure_threshold=0.0)
        with pytest.raises(ValueError):
            FleetScheduler(degrade_after=0)

    def test_sheds_lowest_priority_least_behind_first(self):
        fleet, scheds = self._fleet(["a", "b", "c"])
        fleet.priorities["c"] = 1.0         # most important: shed last
        hot = {"a": 1.2, "b": 2.0, "c": 1.5}
        assert fleet.tick(hot) is None      # hysteresis: not yet
        action = fleet.tick(hot)
        assert action == {"tick": 2, "action": "shed", "stream": "a",
                          "min_rung": 1}
        assert scheds["a"].min_rung == 1
        assert scheds["b"].min_rung == 0 and scheds["c"].min_rung == 0

    def test_restores_highest_rank_first_when_calm(self):
        fleet, scheds = self._fleet(["a", "b"])
        scheds["a"].set_min_rung(1)
        scheds["b"].set_min_rung(1)
        fleet.priorities["b"] = 1.0
        calm = {"a": 0.2, "b": 0.2}
        actions = [fleet.tick(calm) for _ in range(6)]
        restored = [a for a in actions if a]
        assert [a["stream"] for a in restored] == ["b", "a"]
        assert scheds["a"].min_rung == 0 and scheds["b"].min_rung == 0

    def test_mixed_load_resets_both_runs(self):
        fleet, _ = self._fleet(["a", "b", "c"])
        hot = {"a": 2.0, "b": 2.0, "c": 2.0}
        fleet.tick(hot)
        assert fleet.hot_run == 1
        # one stream behind, below the 50% pressure threshold: hold
        fleet.tick({"a": 2.0, "b": 0.5, "c": 0.5})
        assert fleet.hot_run == 0 and fleet.calm_run == 0

    def test_shed_saturates_at_ladder_bottom(self):
        fleet, scheds = self._fleet(["a"], degrade_after=1)
        bottom = len(scheds["a"].ladder) - 1
        for _ in range(bottom + 5):
            fleet.tick({"a": 3.0})
        assert scheds["a"].min_rung == bottom
        # every floor maxed: shed becomes a no-op, not an error
        assert fleet.tick({"a": 3.0}) is None

    def test_stats_snapshot(self):
        fleet, scheds = self._fleet(["a", "b"], degrade_after=1)
        fleet.tick({"a": 2.0, "b": 2.0})
        stats = fleet.stats()
        assert stats["ticks"] == 1
        assert stats["floors"] == {"a": 1, "b": 0} or \
            stats["floors"] == {"a": 0, "b": 1}
        assert len(stats["actions"]) == 1

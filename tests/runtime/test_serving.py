"""Tests for the resilient serving loop itself.

The load-bearing property: at the ``full`` rung the runtime serves
*bitwise* the detections of the plain streaming stack it wraps - the
resilience machinery must cost nothing when nothing goes wrong.
"""

import time

import numpy as np
import pytest

from repro.pipeline import SlidingWindowDetector
from repro.pipeline.multiscale import PyramidDetector
from repro.pipeline.stream import TemporalTracker, VideoStreamDetector
from repro.runtime import DegradationLadder, ResilientVideoDetector, Rung

from .conftest import make_detector

pytestmark = pytest.mark.tier1


class TestConstruction:
    def test_requires_shared_engine(self, serve_pipe):
        det = SlidingWindowDetector(serve_pipe, window=24, engine="legacy")
        with pytest.raises(ValueError):
            ResilientVideoDetector(PyramidDetector(det))
        with pytest.raises(ValueError):
            ResilientVideoDetector(det)  # not a PyramidDetector

    def test_adopts_video_stream_detector(self, serve_pipe):
        tracker = TemporalTracker(min_hits=1)
        stream = VideoStreamDetector(make_detector(serve_pipe),
                                     tracker=tracker)
        runtime = ResilientVideoDetector(stream, stall_timeout=None)
        assert runtime.tracker is tracker
        assert runtime.pyramid is stream.pyramid

    def test_double_start_rejected(self, make_runtime):
        runtime = make_runtime().start()
        try:
            with pytest.raises(RuntimeError):
                runtime.start()
        finally:
            runtime.stop()


class TestFullRungEquivalence:
    @pytest.mark.parametrize("backend", ["dense", "packed"])
    def test_serves_plain_stream_detections_bitwise(self, serve_pipe, video,
                                                    backend):
        frames, _ = video
        runtime = ResilientVideoDetector(make_detector(serve_pipe, backend),
                                         budget=10.0, stall_timeout=None)
        plain = VideoStreamDetector(make_detector(serve_pipe, backend))
        for served, ref in zip(runtime.run(frames), plain.run(frames)):
            assert served.mode == "detected"
            assert served.rung == "full"
            assert served.detections == ref.detections

    def test_delta_reuse_engages(self, make_runtime, video):
        frames, _ = video
        results = list(make_runtime().run(frames))
        assert results[0].reuse["mode"] == "cold"
        assert all(r.reuse["mode"] == "delta" for r in results[1:])

    def test_covering_prefix_is_bitwise_identical(self, serve_pipe, video):
        # prefix_fraction that rounds up to every word: the serving model
        # must fall back to the full model, not a truncated copy
        frames, _ = video
        cover = ResilientVideoDetector(
            make_detector(serve_pipe), budget=10.0, stall_timeout=None,
            ladder=DegradationLadder([Rung("cover", prefix_fraction=0.99)]))
        full = ResilientVideoDetector(make_detector(serve_pipe), budget=10.0,
                                      stall_timeout=None)
        for a, b in zip(cover.run(frames), full.run(frames)):
            assert a.detections == b.detections


class TestServingModel:
    def test_truncated_views_are_cached(self, make_runtime):
        runtime = make_runtime()
        rung = Rung("half", prefix_fraction=0.5)
        model = runtime._serving_model(rung)
        assert model.words == runtime.base.packed_model().n_words // 2
        assert runtime._serving_model(rung) is model

    def test_full_rung_uses_the_base_model(self, make_runtime):
        runtime = make_runtime()
        assert runtime._serving_model(Rung("full")) \
            is runtime.base.packed_model()

    def test_dense_backend_ignores_truncation(self, make_runtime):
        runtime = make_runtime(backend="dense")
        assert runtime._serving_model(Rung("half", prefix_fraction=0.5)) \
            is None


class TestDegradedModes:
    def test_skip_rung_predicts_from_tracker(self, serve_pipe, video):
        frames, _ = video
        runtime = ResilientVideoDetector(
            make_detector(serve_pipe), budget=10.0, stall_timeout=None,
            tracker=TemporalTracker(min_hits=1),
            ladder=DegradationLadder([Rung("skip", keyframe_every=2)]))
        results = list(runtime.run(frames))
        assert [r.mode for r in results] == \
            ["detected", "predicted"] * (len(frames) // 2)
        for r in results:
            if r.mode == "predicted":
                assert r.detections == [] and len(r.tracks) >= 1
        assert runtime.predicted == len(frames) // 2

    def test_overload_degrades_to_the_deepest_rung(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime(budget=1e-6, degrade_after=1)
        list(runtime.run(frames))
        stats = runtime.stats()
        assert stats["rung_name"] == "skip"
        assert stats["max_rung"] == 3
        assert stats["deadline_misses"] == len(frames)
        assert stats["incidents"]["rung_degraded"] == 3
        assert len(stats["rung_transitions"]) == 3


class TestFailureContainment:
    def test_poison_frame_quarantined_not_tracked(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime()
        runtime.step(frames[0])
        frames_before = runtime.tracker.frames
        result = runtime.step(np.full_like(frames[0], np.nan))
        assert result.mode == "quarantined"
        assert runtime.tracker.frames == frames_before
        assert runtime.stats()["quarantined"] == 1
        assert runtime.stats()["quarantine_reasons"] == {"nan": 1}
        assert runtime.incidents.counts()["poison_frame"] == 1

    def test_processing_crash_is_contained(self, make_runtime, video):
        frames, _ = video

        def explode(index, frame, meta, cancel):
            if index == 1:
                raise RuntimeError("boom")

        runtime = make_runtime()
        runtime.pre_frame = explode
        results = list(runtime.run(frames[:3]))
        assert [r.mode for r in results] == \
            ["detected", "cancelled", "detected"]
        assert runtime.crashes == 1
        assert runtime.incidents.counts()["crash"] == 1

    def test_crashed_frames_not_in_latency_percentiles(self, make_runtime,
                                                       video):
        frames, _ = video
        runtime = make_runtime()
        runtime.pre_frame = lambda i, f, m, c: (_ for _ in ()).throw(
            RuntimeError("boom"))
        list(runtime.run(frames[:2]))
        assert runtime.stats()["frames"] == 2
        assert runtime._latencies == []


class TestAsyncLoop:
    def test_processes_all_frames_in_order(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime(queue_size=2, policy="block")
        runtime.start()
        for frame in frames:
            assert runtime.submit(frame)
        results = runtime.stop()
        assert [r.index for r in results] == list(range(len(frames)))
        assert runtime.stats()["frames"] == len(frames)
        assert runtime.stats()["dropped"] == 0

    def test_submit_after_stop_is_rejected(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime().start()
        runtime.submit(frames[0])
        runtime.stop()
        assert runtime.submit(frames[1]) is False

    def test_watchdog_cancels_a_soft_stall(self, make_runtime, video):
        frames, _ = video

        def stall(index, frame, meta, cancel):
            if index == 1:
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if cancel.is_set():
                        from repro.runtime import FrameCancelled
                        raise FrameCancelled("stalled")
                    time.sleep(0.005)

        runtime = make_runtime(stall_timeout=0.3, queue_size=8,
                               policy="block")
        runtime.pre_frame = stall
        runtime.start()
        for frame in frames[:3]:
            runtime.submit(frame)
        results = runtime.stop()
        stats = runtime.stats()
        assert stats["watchdog"]["cancels"] == 1
        assert stats["cancelled"] == 1
        assert stats["incidents"]["stall_cancelled"] == 1
        assert [r.mode for r in results].count("detected") == 2


class TestStats:
    def test_reports_the_whole_story(self, make_runtime, video):
        frames, _ = video
        runtime = make_runtime()
        list(runtime.run(frames))
        stats = runtime.stats()
        for key in ("frames", "fps", "latency_p95", "proc_p95", "budget",
                    "rung_name", "watchdog", "incidents", "delta_patched",
                    "tracks_confirmed"):
            assert key in stats
        assert stats["frames"] == len(frames)
        assert stats["crashes"] == 0
        assert stats["latency_p95"] > 0.0
        assert stats["proc_p95"] > 0.0

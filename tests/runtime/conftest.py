"""Shared fixtures for the serving-runtime tests.

One trained pipeline and one short moving-face clip are built per
package; each test gets a fresh runtime from the ``make_runtime``
factory (watchdog off and a huge budget by default, so the sync tests
are deterministic).
"""

import pytest

from repro.datasets.synth import moving_face_sequence
from repro.pipeline import (
    HDFacePipeline,
    PyramidDetector,
    SlidingWindowDetector,
)
from repro.runtime import ResilientVideoDetector

WINDOW = 24
STRIDE = 8


@pytest.fixture(scope="package")
def serve_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
                          epochs=5, seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="package")
def video():
    frames, truth = moving_face_sequence(48, 6, window=WINDOW, step=2,
                                         seed_or_rng=3)
    return frames, [[t] for t in truth]


def make_detector(pipe, backend="packed"):
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                backend=backend)
    return PyramidDetector(det, score_threshold=0.0)


@pytest.fixture
def make_runtime(serve_pipe):
    def factory(backend="packed", **kwargs):
        kwargs.setdefault("budget", 10.0)
        kwargs.setdefault("stall_timeout", None)
        return ResilientVideoDetector(make_detector(serve_pipe, backend),
                                      **kwargs)
    return factory

"""Tests for the stall watchdog's two-stage escalation state machine.

All timing is driven through an injected fake clock, so the escalation
sequence is exercised deterministically - no sleeps, no flakes.
"""

import pytest

from repro.runtime import Watchdog


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


def make_watchdog(clock, **kwargs):
    fired = {"cancel": [], "restart": []}
    wd = Watchdog(stall_timeout=1.0, grace=1.0, clock=clock,
                  on_cancel=fired["cancel"].append,
                  on_restart=fired["restart"].append, **kwargs)
    return wd, fired


class TestEscalation:
    def test_idle_polls_fire_nothing(self, clock):
        wd, fired = make_watchdog(clock)
        clock.now = 100.0
        assert wd.poll() is None
        assert fired == {"cancel": [], "restart": []}

    def test_fast_frame_never_escalates(self, clock):
        wd, fired = make_watchdog(clock)
        token = wd.frame_started(0)
        clock.now = 0.5
        assert wd.poll() is None
        wd.frame_finished(token)
        clock.now = 50.0
        assert wd.poll() is None

    def test_cancel_then_restart_sequence(self, clock):
        wd, fired = make_watchdog(clock)
        wd.frame_started(7)
        clock.now = 1.5                      # past stall_timeout
        assert wd.poll() == "cancel"
        assert fired["cancel"] == [7]
        assert wd.poll() is None             # cancel fires once
        clock.now = 1.9                      # still inside the grace
        assert wd.poll() is None
        clock.now = 2.5                      # past stall_timeout + grace
        assert wd.poll() == "restart"
        assert fired["restart"] == [7]
        assert wd.stats() == {"cancels": 1, "restarts": 1}

    def test_restart_abandons_the_frame(self, clock):
        wd, _ = make_watchdog(clock)
        wd.frame_started(3)
        clock.now = 1.5
        wd.poll()
        clock.now = 2.5
        wd.poll()
        clock.now = 99.0                     # the wedged frame is forgotten
        assert wd.poll() is None

    def test_cancel_cleared_when_frame_finishes_in_grace(self, clock):
        wd, fired = make_watchdog(clock)
        token = wd.frame_started(0)
        clock.now = 1.5
        assert wd.poll() == "cancel"
        wd.frame_finished(token)             # the frame honored the cancel
        clock.now = 10.0
        assert wd.poll() is None
        assert fired["restart"] == []


class TestTokens:
    def test_stale_token_cannot_clear_the_next_frame(self, clock):
        wd, _ = make_watchdog(clock)
        stale = wd.frame_started(0)
        wd.frame_started(1)                  # replacement consumer's frame
        wd.frame_finished(stale)             # the abandoned thread finishes
        clock.now = 1.5
        assert wd.poll() == "cancel"         # frame 1 is still watched

    def test_current_token_clears(self, clock):
        wd, _ = make_watchdog(clock)
        token = wd.frame_started(0)
        wd.frame_finished(token)
        clock.now = 5.0
        assert wd.poll() is None


class TestLifecycle:
    def test_validation(self):
        with pytest.raises(ValueError):
            Watchdog(stall_timeout=0.0)
        with pytest.raises(ValueError):
            Watchdog(stall_timeout=1.0, grace=-1.0)

    def test_grace_defaults_to_stall_timeout(self):
        assert Watchdog(stall_timeout=2.0).grace == 2.0

    def test_start_stop_idempotent(self):
        wd = Watchdog(stall_timeout=0.05, interval=0.01)
        wd.start()
        wd.start()                           # second start is a no-op
        wd.stop()
        wd.stop()
        assert wd._thread is None

    def test_stop_clears_the_heartbeat(self):
        wd = Watchdog(stall_timeout=10.0)
        wd.frame_started(0)
        wd.stop()
        assert wd.poll() is None

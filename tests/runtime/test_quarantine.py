"""Tests for the input quarantine gate."""

import numpy as np
import pytest

from repro.runtime import InputQuarantine, PoisonFrameError
from repro.runtime.quarantine import POISON_REASONS


def good_frame(shape=(16, 16)):
    return np.linspace(0.0, 1.0, shape[0] * shape[1]).reshape(shape)


class TestRejection:
    def _reason(self, gate, frame):
        with pytest.raises(PoisonFrameError) as exc:
            gate.check(frame)
        return exc.value.reason

    def test_object_dtype(self):
        assert self._reason(InputQuarantine(),
                            np.full((4, 4), "x", dtype=object)) == "dtype"

    def test_complex_dtype(self):
        assert self._reason(InputQuarantine(),
                            np.zeros((4, 4), dtype=complex)) == "dtype"

    def test_wrong_ndim(self):
        assert self._reason(InputQuarantine(),
                            good_frame()[None, ...]) == "ndim"

    def test_empty(self):
        assert self._reason(InputQuarantine(),
                            np.zeros((0, 4))) == "empty"

    def test_shape_mismatch(self):
        gate = InputQuarantine(expect_shape=(16, 16))
        assert self._reason(gate, good_frame((8, 8))) == "shape"

    def test_nan(self):
        bad = good_frame()
        bad[3, 3] = np.nan
        assert self._reason(InputQuarantine(), bad) == "nan"

    def test_inf(self):
        bad = good_frame()
        bad[3, 3] = np.inf
        assert self._reason(InputQuarantine(), bad) == "inf"

    def test_constant(self):
        assert self._reason(InputQuarantine(),
                            np.full((8, 8), 0.5)) == "constant"

    def test_out_of_range(self):
        gate = InputQuarantine(value_range=(0.0, 1.0))
        assert self._reason(gate, good_frame() * 255.0) == "range"

    def test_error_is_structured(self):
        with pytest.raises(PoisonFrameError) as exc:
            InputQuarantine(expect_shape=(16, 16)).check(good_frame((8, 8)))
        err = exc.value
        assert err.reason in POISON_REASONS
        assert "(16, 16)" in err.detail and "(8, 8)" in err.detail
        assert isinstance(err, ValueError)

    def test_unknown_reason_rejected(self):
        with pytest.raises(ValueError):
            PoisonFrameError("haunted", "boo")


class TestAcceptance:
    def test_good_frame_passes_as_float64(self):
        gate = InputQuarantine()
        out = gate.check(good_frame().astype(np.float32))
        assert out.dtype == np.float64
        assert gate.passed == 1

    def test_integer_frames_accepted(self):
        gate = InputQuarantine()
        out = gate.check(np.arange(16).reshape(4, 4))
        assert out.dtype == np.float64

    def test_constant_allowed_when_configured(self):
        gate = InputQuarantine(reject_constant=False)
        gate.check(np.full((8, 8), 0.5))
        assert gate.passed == 1

    def test_range_check_disabled_by_default(self):
        InputQuarantine().check(good_frame() * 255.0)


class TestAccounting:
    def test_stats_count_per_reason(self):
        gate = InputQuarantine(expect_shape=(16, 16))
        gate.check(good_frame())
        for bad in (good_frame((8, 8)), good_frame((8, 8)),
                    np.full((16, 16), 0.5)):
            with pytest.raises(PoisonFrameError):
                gate.check(bad)
        stats = gate.stats()
        assert stats["passed"] == 1
        assert stats["rejected"] == {"shape": 2, "constant": 1}
        assert stats["rejected_total"] == 3

    def test_checks_stop_at_first_violation(self):
        # a wrong-shape frame full of NaN trips "shape", not "nan":
        # the checks run cheapest-first
        gate = InputQuarantine(expect_shape=(16, 16))
        bad = np.full((8, 8), np.nan)
        with pytest.raises(PoisonFrameError) as exc:
            gate.check(bad)
        assert exc.value.reason == "shape"

"""Tests for the chaos harness: poison forging, scenarios, end-to-end gates.

The full campaign lives in ``benchmarks/bench_runtime_resilience.py``;
here the harness itself is under test - every poison kind trips the
quarantine reason it claims, scenario payloads are JSON-clean, and a
small ``run_chaos`` pass produces a well-formed, passing report.
"""

import json

import numpy as np
import pytest

from repro.runtime import (
    ChaosScenario,
    InputQuarantine,
    PoisonFrameError,
    ResilientVideoDetector,
    poison_frame,
    run_chaos,
)
from repro.runtime.chaos import POISON_KINDS

from .conftest import make_detector

pytestmark = pytest.mark.tier1


class TestPoisonFrames:
    @pytest.mark.parametrize("kind", POISON_KINDS)
    def test_each_kind_trips_its_quarantine_reason(self, kind):
        gate = InputQuarantine(expect_shape=(64, 64))
        with pytest.raises(PoisonFrameError) as exc:
            gate.check(poison_frame(kind, (64, 64)))
        assert exc.value.reason == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            poison_frame("glitter")

    def test_deterministic_without_rng(self):
        assert np.array_equal(poison_frame("inf"), poison_frame("inf"),
                              equal_nan=True)


class TestScenario:
    def test_payload_is_json_safe(self):
        scenario = ChaosScenario("s", stalls={1: 0.5}, hard_stalls={2: 1.0},
                                 poison={3: "nan"}, spikes={4: 0.1},
                                 fault_rate=0.01, fault_frames=(0, 5),
                                 model_fault_rate=0.001, seed=7)
        payload = json.loads(json.dumps(scenario.payload()))
        assert payload["name"] == "s"
        assert payload["poison"] == {"3": "nan"}
        assert payload["fault_frames"] == [0, 5]

    def test_defaults_are_empty(self):
        payload = ChaosScenario("quiet").payload()
        assert payload["stalls"] == {} and payload["fault_rate"] == 0.0


class TestRunChaos:
    @pytest.fixture
    def factory(self, serve_pipe):
        from repro.pipeline.stream import TemporalTracker

        def make_runtime(ladder=None, budget=None):
            return ResilientVideoDetector(
                make_detector(serve_pipe),
                budget=budget if budget else 10.0, ladder=ladder,
                tracker=TemporalTracker(min_hits=1),
                stall_timeout=0.5, queue_size=8, policy="block")
        return make_runtime

    def test_poison_scenario_passes_its_gates(self, factory, video):
        frames, truth = video
        # poison lands after the track is established, so the quarantined
        # frames are served from coasting - the recall gate stays tight
        scenario = ChaosScenario("poison", poison={3: "nan", 4: "shape"})
        report = run_chaos(factory, frames, truth, scenario)
        assert report["passed"], report["gates"]
        assert report["stats"]["quarantined"] == 2
        assert report["stats"]["crashes"] == 0
        assert report["frames_unserved"] == 0
        assert set(report["gates"]) == {
            "no_crashes", "stalls_recovered", "poison_quarantined",
            "poison_not_cached", "recall_within_bound", "p95_within_budget"}
        json.dumps(report)  # the whole report must be JSON-ready

    def test_soft_stall_is_cancelled_and_gated(self, factory, video):
        frames, truth = video
        scenario = ChaosScenario("stall", stalls={1: 2.0})
        report = run_chaos(factory, frames, truth, scenario)
        assert report["gates"]["stalls_recovered"], report
        assert report["stats"]["watchdog"]["cancels"] >= 1
        assert report["stats"]["incidents"].get("stall_cancelled", 0) >= 1

    def test_poison_never_reaches_the_scene_cache(self, factory, video):
        frames, truth = video
        scenario = ChaosScenario("poison", poison={2: "constant"})
        report = run_chaos(factory, frames, truth, scenario)
        assert report["gates"]["poison_not_cached"]

    def test_recall_gate_compares_against_clean_twin(self, factory, video):
        frames, truth = video
        report = run_chaos(factory, frames, truth, ChaosScenario("quiet"))
        # nothing injected: both runs are clean at the full rung
        assert report["deepest_rung_name"] == "full"
        assert report["recall_chaos"] == report["recall_clean"]
        assert report["recall_drop"] == 0.0


class TestAdaptChaos:
    """Online-learning attacks: detected, rolled back, recall preserved."""

    @pytest.fixture
    def factory(self, serve_pipe):
        from repro.pipeline.stream import TemporalTracker

        def make_runtime(ladder=None, budget=None):
            return ResilientVideoDetector(
                make_detector(serve_pipe),
                budget=budget if budget else 10.0, ladder=ladder,
                tracker=TemporalTracker(min_hits=1),
                stall_timeout=0.5, queue_size=8, policy="block",
                adapt=True)
        return make_runtime

    def test_label_poison_detected_and_rolled_back(self, factory, video):
        frames, truth = video
        scenario = ChaosScenario("label-poison", label_poison={3: "label"})
        report = run_chaos(factory, frames, truth, scenario)
        assert report["passed"], report["gates"]
        assert report["gates"]["poison_update_detected"]
        assert report["gates"]["poison_update_rolled_back"]
        assert report["gates"]["recall_within_bound"]
        assert report["adapt"]["poison_injected"] == 1
        assert report["adapt"]["poison_rejected"] == 1
        assert report["adapt"]["rollbacks"] >= 1
        json.dumps(report)

    def test_replica_poison_outvoted(self, factory, video):
        frames, truth = video
        scenario = ChaosScenario("replica-poison",
                                 label_poison={3: "replica"})
        report = run_chaos(factory, frames, truth, scenario)
        assert report["passed"], report["gates"]
        assert report["gates"]["poison_update_detected"]
        # replica corruption is outvoted, not rejected: no rollback gate
        assert "poison_update_rolled_back" not in report["gates"]
        assert report["adapt"]["poison_outvoted"] == 1

    def test_update_storm_throttled(self, factory, video):
        frames, truth = video
        scenario = ChaosScenario("storm", update_storm={3: 10})
        report = run_chaos(factory, frames, truth, scenario)
        assert report["passed"], report["gates"]
        assert report["gates"]["storm_throttled"]
        assert report["adapt"]["storm_suppressed"] >= 8

    def test_frozen_runtime_skips_adapt_gates(self, serve_pipe, video):
        from repro.pipeline.stream import TemporalTracker

        def make_runtime(ladder=None, budget=None):
            return ResilientVideoDetector(
                make_detector(serve_pipe),
                budget=budget if budget else 10.0, ladder=ladder,
                tracker=TemporalTracker(min_hits=1),
                stall_timeout=0.5, queue_size=8, policy="block")

        frames, truth = video
        scenario = ChaosScenario("unarmed", label_poison={3: "label"})
        report = run_chaos(make_runtime, frames, truth, scenario)
        # no adapter: the scenario's arming is inert and ungated
        assert "poison_update_detected" not in report["gates"]
        assert report["adapt"] is None

    def test_fleet_label_poison_contained_to_victim(self, serve_pipe, video):
        from repro.runtime import FleetDispatcher, run_fleet_chaos

        frames, truth = video
        fleet = FleetDispatcher(
            lambda: make_detector(serve_pipe), budget=10.0, max_streams=4,
            batch_window=0.01, stall_timeout=0.5, queue_size=8,
            policy="block", adapt=True, guard_kwargs={"seed_or_rng": 0})
        for name in ("cam0", "cam1", "cam2"):
            fleet.add_stream(name)
        clean_rows = fleet.shared_model.replicas.copy()
        scenario = ChaosScenario("victim-poison", label_poison={3: "label"})
        # every stream scores 5/6 on this clip (frame 0 has no track yet),
        # so 0.8 is a tight floor: any poison absorption would break it
        report = run_fleet_chaos(fleet, frames, truth, {"cam0": scenario},
                                 min_recall=0.8)
        assert report["passed"], report["gates"]
        assert report["gates"]["poison_update_detected"]
        assert report["gates"]["poison_update_rolled_back"]
        victim = report["streams"]["cam0"]
        assert victim["poison_update_detected"]
        assert victim["adapt"]["poison_rejected"] == 1
        # the shared model never absorbed the victim's poison, so the
        # healthy streams' recall gate proves blast-radius containment
        assert np.array_equal(fleet.shared_model.replicas, clean_rows)
        for name in ("cam1", "cam2"):
            assert report["streams"][name]["recall_ok"]
        json.dumps(report)


class TestRunFleetChaos:
    @pytest.fixture
    def fleet(self, serve_pipe):
        from repro.runtime import FleetDispatcher

        fleet = FleetDispatcher(
            lambda: make_detector(serve_pipe), budget=10.0, max_streams=4,
            batch_window=0.01, stall_timeout=0.5, queue_size=8,
            policy="block")
        for name in ("cam0", "cam1", "cam2"):
            fleet.add_stream(name)
        return fleet

    def test_victim_chaos_contained_and_report_json_safe(self, fleet, video):
        from repro.runtime import run_fleet_chaos

        frames, truth = video
        scenario = ChaosScenario("victim", stalls={2: 2.0},
                                 poison={4: "nan"})
        report = run_fleet_chaos(fleet, frames, truth, {"cam0": scenario})
        assert report["passed"], report["gates"]
        assert report["victim_streams"] == ["cam0"]
        assert sorted(report["healthy_streams"]) == ["cam1", "cam2"]
        assert report["streams"]["cam0"]["role"] == "victim"
        assert report["streams"]["cam0"]["stalls_recovered"]
        assert report["streams"]["cam0"]["poison_quarantined"]
        for name in ("cam1", "cam2"):
            entry = report["streams"][name]
            assert entry["role"] == "healthy"
            assert entry["p95_within_budget"]
            assert entry["frames"] == len(frames)
        json.dumps(report)  # the whole report must be JSON-ready

    def test_requires_a_healthy_stream(self, fleet, video):
        from repro.runtime import run_fleet_chaos

        frames, truth = video
        scenarios = {n: ChaosScenario("all-out")
                     for n in ("cam0", "cam1", "cam2")}
        with pytest.raises(ValueError):
            run_fleet_chaos(fleet, frames, truth, scenarios)

    def test_unknown_victim_rejected(self, fleet, video):
        from repro.runtime import run_fleet_chaos

        frames, truth = video
        with pytest.raises(ValueError):
            run_fleet_chaos(fleet, frames, truth,
                            {"nope": ChaosScenario("x")})

"""Tests for fleet-scale multi-stream serving (runtime/fleet.py).

The contract under test: the dispatcher admits streams inside its
envelope and refuses the rest; the batch gate merges concurrent scan
calls without changing a single score (fleet detections are bitwise the
solo runtime's); the gate never wedges a waiter - errors re-raise in
every participating stream and a watchdog cancel aborts a follower.
"""

import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    AdmissionError,
    BatchGate,
    FleetDispatcher,
    FrameCancelled,
    ResilientVideoDetector,
)

from .conftest import make_detector


class FakeBatcher:
    """Stands in for CrossStreamBatcher: echoes requests, logs batches."""

    def __init__(self, delay=0.0, fail=False):
        self.delay = delay
        self.fail = fail
        self.batches = []

    def scan_many(self, requests):
        if self.delay:
            time.sleep(self.delay)
        if self.fail:
            raise RuntimeError("batch exploded")
        self.batches.append(len(requests))
        return [("scanned", r) for r in requests]


class TestBatchGate:
    def test_single_caller_gets_its_results(self):
        gate = BatchGate(FakeBatcher(), batch_window=0.0)
        assert gate.scan(["a", "b"]) == [("scanned", "a"), ("scanned", "b")]
        assert gate.stats()["batches"] == 1

    def test_concurrent_callers_share_one_batch(self):
        batcher = FakeBatcher(delay=0.01)
        gate = BatchGate(batcher, batch_window=0.05)
        results = {}

        def worker(name):
            results[name] = gate.scan([name])

        threads = [threading.Thread(target=worker, args=(f"s{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert all(not t.is_alive() for t in threads)
        for i in range(4):
            assert results[f"s{i}"] == [("scanned", f"s{i}")]
        stats = gate.stats()
        # every request served, and at least one true multi-stream batch
        assert stats["batched_requests"] == 4
        assert stats["max_bundles"] >= 2

    def test_batch_failure_raises_in_every_caller(self):
        gate = BatchGate(FakeBatcher(fail=True), batch_window=0.02)
        errors = []

        def worker():
            try:
                gate.scan(["x"])
            except RuntimeError as err:
                errors.append(str(err))

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert errors == ["batch exploded"] * 3
        assert gate.stats()["batches"] == 0

    def test_cancelled_follower_aborts_without_wedging(self):
        release = threading.Event()

        class SlowBatcher(FakeBatcher):
            def scan_many(self, requests):
                release.wait(10.0)
                return super().scan_many(requests)

        gate = BatchGate(SlowBatcher(), batch_window=0.2, poll=0.01)
        cancel = threading.Event()
        outcome = {}

        def leader():
            outcome["leader"] = gate.scan(["lead"])

        def follower():
            try:
                gate.scan(["follow"], cancel=cancel)
            except FrameCancelled:
                outcome["follower"] = "cancelled"

        t1 = threading.Thread(target=leader)
        t1.start()
        time.sleep(0.05)                    # join the leader's window
        t2 = threading.Thread(target=follower)
        t2.start()
        time.sleep(0.05)
        cancel.set()                        # watchdog fires on the follower
        t2.join(timeout=5.0)
        assert outcome.get("follower") == "cancelled"
        release.set()                       # leader's batch completes
        t1.join(timeout=5.0)
        assert outcome["leader"] == [("scanned", "lead")]

    def test_on_batch_callback_fires(self):
        seen = []
        gate = BatchGate(FakeBatcher(), batch_window=0.0,
                         on_batch=lambda b, r: seen.append((b, r)))
        gate.scan(["a", "b"])
        assert seen == [(1, 2)]


class TestAdmission:
    def test_max_streams_enforced(self, serve_pipe):
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, max_streams=2,
                                stall_timeout=None)
        fleet.add_stream("a")
        fleet.add_stream("b")
        with pytest.raises(AdmissionError):
            fleet.add_stream("c")

    def test_capacity_fps_enforced(self, serve_pipe):
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, max_streams=8,
                                capacity_fps=30.0, stall_timeout=None)
        fleet.add_stream("a", fps=20.0)
        with pytest.raises(AdmissionError):
            fleet.add_stream("b", fps=15.0)
        fleet.add_stream("c", fps=10.0)     # fits exactly

    def test_duplicate_name_rejected(self, serve_pipe):
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, stall_timeout=None)
        fleet.add_stream("a")
        with pytest.raises(ValueError):
            fleet.add_stream("a")

    def test_requires_pyramid_with_shared_engine(self):
        with pytest.raises(ValueError):
            FleetDispatcher(lambda: object())


class TestSharedDatapath:
    def test_streams_share_detector_and_engine(self, serve_pipe):
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, stall_timeout=None)
        a = fleet.add_stream("a")
        b = fleet.add_stream("b")
        assert a.base is b.base
        assert a.base.engine is b.base.engine
        assert a.pyramid is not b.pyramid   # per-stream wrapper

    def test_engine_cache_grows_with_admissions(self, serve_pipe):
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, cache_per_stream=8,
                                stall_timeout=None)
        fleet.add_stream("a")
        first = fleet.template.detector.engine.cache_size
        fleet.add_stream("b")
        assert fleet.template.detector.engine.cache_size >= first
        assert fleet.template.detector.engine.cache_size >= 16


class TestFleetVsSolo:
    def test_fleet_detections_bitwise_equal_solo(self, serve_pipe, video):
        frames, _ = video
        solo = ResilientVideoDetector(make_detector(serve_pipe),
                                      budget=10.0, stall_timeout=None)
        want = [solo.step(f, meta={"i": i}) for i, f in enumerate(frames)]

        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, max_streams=3,
                                batch_window=0.01, stall_timeout=None,
                                policy="block")
        names = ["cam0", "cam1", "cam2"]
        for name in names:
            fleet.add_stream(name)
        fleet.start()
        for i, frame in enumerate(frames):
            for name in names:
                fleet.submit(name, frame, meta={"i": i})
        results = fleet.stop()

        for name in names:
            got = results[name]
            assert len(got) == len(want)
            for g, w in zip(got, want):
                assert g.mode == "detected" and w.mode == "detected"
                assert g.detections == w.detections

    def test_gate_actually_batches_across_streams(self, serve_pipe, video):
        frames, _ = video
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, max_streams=3,
                                batch_window=0.05, stall_timeout=None,
                                policy="block")
        for name in ("a", "b", "c"):
            fleet.add_stream(name)
        fleet.start()
        for frame in frames[:4]:
            for name in ("a", "b", "c"):
                fleet.submit(name, frame)
        fleet.stop()
        assert fleet.gate.stats()["max_bundles"] >= 2

    def test_batching_off_scans_solo(self, serve_pipe, video):
        frames, _ = video
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, batching=False,
                                stall_timeout=None)
        rt = fleet.add_stream("a")
        assert fleet.gate is None and rt.batch_scan is None
        result = fleet.step("a", frames[0])
        assert result.mode == "detected"


class TestFleetGuard:
    def test_guard_shares_one_model_across_streams(self, serve_pipe):
        from repro.reliability import GuardedClassModel
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, guard=True,
                                guard_kwargs={"seed_or_rng": 0},
                                stall_timeout=None)
        a = fleet.add_stream("a")
        b = fleet.add_stream("b")
        assert isinstance(fleet.shared_model, GuardedClassModel)
        assert a.model_override is fleet.shared_model
        assert b.model_override is fleet.shared_model
        assert a.adapter is None and b.adapter is None

    def test_guard_requires_packed_backend(self, serve_pipe):
        with pytest.raises(ValueError, match="packed"):
            FleetDispatcher(lambda: make_detector(serve_pipe, "dense"),
                            budget=10.0, guard=True, stall_timeout=None)

    def test_guarded_detections_match_unguarded(self, serve_pipe, video):
        frames, _ = video
        solo = ResilientVideoDetector(make_detector(serve_pipe),
                                      budget=10.0, stall_timeout=None)
        want = [solo.step(f) for f in frames[:3]]
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, guard=True,
                                guard_kwargs={"seed_or_rng": 0},
                                stall_timeout=None)
        fleet.add_stream("a")
        for frame, w in zip(frames[:3], want):
            got = fleet.step("a", frame)
            assert got.mode == "detected"
            assert got.detections == w.detections

    def test_replica_corruption_heals_fleet_wide(self, serve_pipe, video):
        frames, _ = video
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, guard=True,
                                guard_kwargs={"seed_or_rng": 0},
                                stall_timeout=None)
        fleet.add_stream("a")
        fleet.add_stream("b")
        clean = fleet.shared_model.replicas[0].copy()
        assert fleet.shared_model.corrupt_replica(1, 0.5, seed_or_rng=7) > 0
        got = fleet.step("a", frames[0])        # scan scrubs + repairs
        assert got.mode == "detected"
        guard = fleet.stats()["fleet"]["guard"]
        assert guard["repaired"] > 0
        np.testing.assert_array_equal(fleet.shared_model.replicas[1], clean)
        # the shared model is healed for *both* streams
        assert fleet.step("b", frames[0]).mode == "detected"
        assert fleet.shared_model.scrub(force=True) == 0


class TestFleetAdapt:
    def _adapt_fleet(self, serve_pipe, **kw):
        return FleetDispatcher(lambda: make_detector(serve_pipe),
                               budget=10.0, adapt=True,
                               guard_kwargs={"seed_or_rng": 0},
                               stall_timeout=None, **kw)

    def test_streams_share_model_but_not_adapters(self, serve_pipe):
        from repro.reliability import AdaptiveGuardedModel
        fleet = self._adapt_fleet(serve_pipe)
        a = fleet.add_stream("a")
        b = fleet.add_stream("b")
        assert isinstance(fleet.shared_model, AdaptiveGuardedModel)
        assert a.adapter.model is fleet.shared_model
        assert b.adapter.model is fleet.shared_model
        assert a.model_override is fleet.shared_model
        assert a.adapter is not b.adapter
        assert a.adapter.drift is not b.adapter.drift

    def test_per_stream_model_kwarg_rejected(self, serve_pipe):
        fleet = self._adapt_fleet(serve_pipe)
        with pytest.raises(ValueError, match="model"):
            fleet.add_stream("a", adapt_kwargs={"model": object()})

    def test_poisoned_stream_is_contained(self, serve_pipe, video):
        frames, _ = video
        solo = ResilientVideoDetector(make_detector(serve_pipe),
                                      budget=10.0, stall_timeout=None)
        want = [solo.step(f) for f in frames]
        fleet = self._adapt_fleet(serve_pipe)
        fleet.add_stream("victim")
        fleet.add_stream("healthy")
        clean_rows = fleet.shared_model.replicas.copy()
        fleet["victim"].adapter.poison_next("label")
        healthy = []
        for frame in frames:
            fleet.step("victim", frame)
            healthy.append(fleet.step("healthy", frame))
        victim = fleet["victim"].adapter
        assert victim.poison_injected == 1
        assert victim.poison_rejected == 1
        assert victim.rollbacks >= 1
        # the shared rows never absorbed the attack ...
        np.testing.assert_array_equal(fleet.shared_model.replicas, clean_rows)
        # ... so the healthy stream's detections are bitwise the frozen
        # baseline's: the blast radius ends at the victim's ledger
        for got, w in zip(healthy, want):
            assert got.detections == w.detections

    def test_adapt_counters_in_merged_profile(self, serve_pipe, video):
        frames, _ = video
        fleet = self._adapt_fleet(serve_pipe)
        fleet.add_stream("a")
        fleet.add_stream("b")
        for frame in frames[:3]:
            fleet.step("a", frame)
            fleet.step("b", frame)
        merged = fleet.merged_profiler()
        for name in ("adapt_proposals", "adapt_applied", "adapt_state",
                     "guard_scrubs", "guard_repaired"):
            assert name in merged.counters
        table = fleet.stats()["fleet"]["profile_table"]
        assert "adapt_applied" in table
        guard = fleet.stats()["fleet"]["guard"]
        assert guard["updates_applied"] == 0      # static scenes: no updates


class TestReporting:
    def test_stats_rollup_and_merged_profile(self, serve_pipe, video):
        frames, _ = video
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, stall_timeout=None)
        for name in ("a", "b"):
            fleet.add_stream(name)
        for frame in frames[:3]:
            fleet.step("a", frame)
            fleet.step("b", frame)
        stats = fleet.stats()
        assert stats["fleet"]["streams"] == 2
        assert stats["fleet"]["frames"] == 6
        assert set(stats["streams"]) == {"a", "b"}
        # the merged table covers both the shared datapath stages (fleet
        # profiler) and the per-stream frame stages (stream profilers)
        table = stats["fleet"]["profile_table"]
        assert "frame_proc" in table
        merged = fleet.merged_profiler()
        assert merged.stats["frame_proc"].calls == 6

    def test_scheduler_ticks_on_load(self, serve_pipe, video):
        frames, _ = video
        fleet = FleetDispatcher(lambda: make_detector(serve_pipe),
                                budget=10.0, stall_timeout=None)
        fleet.add_stream("a", priority=1.0)
        fleet.step("a", frames[0])          # gate ticks once per batch
        before = fleet.scheduler.ticks
        assert before >= 1
        assert fleet.tick() is None         # healthy: no action
        assert fleet.scheduler.ticks == before + 1
        assert fleet.scheduler.priorities["a"] == 1.0

"""Checkpoint/restore round-trip tests.

The contract is *exactness*: ``save -> restore -> snapshot`` reproduces
the saved state bitwise, and a restored runtime serves the same frame
tail with identical detections to the runtime it was cloned from.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hypervector import random_hypervector
from repro.core.packed import PackedClassModel
from repro.learning.online import OnlineUpdate
from repro.reliability import AdaptiveGuardedModel
from repro.runtime import (
    CheckpointVersionError,
    load_model_state,
    load_runtime_state,
    model_state,
    restore_model,
    restore_runtime,
    runtime_state,
    save_model,
    save_runtime,
)

# float32-width values round-trip float64 storage exactly
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
track_row = st.tuples(st.integers(0, 1000), finite, finite,
                      st.floats(1.0, 100.0, width=32), finite,
                      st.integers(0, 50), st.integers(0, 50),
                      st.integers(0, 50), st.integers(0, 1))


def _snapshot_state(n_tracks=2, rung=1, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "version": 2,
        "tracks": [[i, float(rng.random()), float(rng.random()), 24.0,
                    float(rng.random()), 3, 1, 4, 1]
                   for i in range(n_tracks)],
        "tracker_next_id": n_tracks,
        "tracker_frames": 7,
        "rung": rung,
        "over_run": 1,
        "under_run": 0,
        "deadline_misses": 5,
        "next_index": 7,
        "frames_in": 9,
        "frames_done": 7,
        "predicted": 2,
        "cancelled": 1,
        "crashes": 0,
        "quarantine_passed": 6,
        "quarantine_rejected": {"nan": 1},
    }


class TestStateRoundTrip:
    def test_load_then_snapshot_is_identity(self, make_runtime):
        runtime = make_runtime()
        state = _snapshot_state()
        load_runtime_state(runtime, state)
        assert runtime_state(runtime) == state
        assert runtime.scheduler.current.name == "coarse"
        assert runtime.incidents.counts()["checkpoint_restored"] == 1

    # load_runtime_state overwrites every field it reads back, so reusing
    # one runtime across examples is sound
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(rows=st.lists(track_row, max_size=4), rung=st.integers(0, 3),
           misses=st.integers(0, 10_000))
    def test_any_state_round_trips_exactly(self, make_runtime, rows, rung,
                                           misses):
        runtime = make_runtime()
        state = _snapshot_state()
        state["tracks"] = [list(r) for r in rows]
        state["rung"] = rung
        state["deadline_misses"] = misses
        load_runtime_state(runtime, state)
        assert runtime_state(runtime) == state

    def test_unknown_version_rejected(self, make_runtime):
        state = _snapshot_state()
        state["version"] = 99
        with pytest.raises(CheckpointVersionError):
            load_runtime_state(make_runtime(), state)

    def test_v1_key_rejected_with_clear_error(self, make_runtime):
        # a v1 payload names its version "format_version": the error must
        # say "unsupported v1", not KeyError on a missing field
        state = _snapshot_state()
        state["format_version"] = state.pop("version") - 1
        with pytest.raises(CheckpointVersionError, match="v1"):
            load_runtime_state(make_runtime(), state)

    def test_missing_version_rejected_with_clear_error(self, make_runtime):
        state = _snapshot_state()
        del state["version"]
        with pytest.raises(CheckpointVersionError, match="version"):
            load_runtime_state(make_runtime(), state)


class TestFileRoundTrip:
    def test_save_restore_save_is_bitwise(self, make_runtime, video,
                                          tmp_path):
        frames, _ = video
        runtime = make_runtime()
        list(runtime.run(frames[:3]))
        path = tmp_path / "runtime.npz"
        saved = save_runtime(runtime, path, frame=2)
        assert runtime.incidents.counts()["checkpoint_saved"] == 1

        clone = make_runtime()
        restored = restore_runtime(clone, path)
        assert restored == saved
        assert runtime_state(clone) == saved

    def test_restored_runtime_serves_identical_tail(self, make_runtime,
                                                    video, tmp_path):
        frames, _ = video
        runtime = make_runtime()
        list(runtime.run(frames[:3]))
        path = tmp_path / "runtime.npz"
        save_runtime(runtime, path)
        clone = make_runtime()
        restore_runtime(clone, path)
        # the original continues on its warm delta path; the clone's first
        # tail frame falls back to full extraction - results must still be
        # bitwise identical
        for a, b in zip(runtime.run(frames[3:]), clone.run(frames[3:])):
            assert (a.index, a.mode, a.detections) == \
                (b.index, b.mode, b.detections)
            assert [(t.track_id, t.y, t.x, t.size, t.score)
                    for t in a.tracks] == \
                [(t.track_id, t.y, t.x, t.size, t.score) for t in b.tracks]

    def test_npz_missing_version_raises_checkpoint_error(self, tmp_path):
        # a file that never was a checkpoint must fail on the version
        # gate, not a cryptic KeyError halfway through field reads
        path = tmp_path / "not_a_checkpoint.npz"
        np.savez_compressed(path, tracks=np.zeros((0, 8)))
        with pytest.raises(CheckpointVersionError, match="version"):
            restore_runtime(None, path)  # fails before touching runtime

    def test_tracks_survive_with_lifecycle_counters(self, make_runtime,
                                                    video, tmp_path):
        frames, _ = video
        runtime = make_runtime()
        list(runtime.run(frames))
        assert runtime.tracker.tracks, "the clip should produce a track"
        path = tmp_path / "runtime.npz"
        save_runtime(runtime, path)
        clone = make_runtime()
        restore_runtime(clone, path)
        for a, b in zip(runtime.tracker.tracks, clone.tracker.tracks):
            assert (a.track_id, a.hits, a.misses, a.age, a.confirmed) == \
                (b.track_id, b.hits, b.misses, b.age, b.confirmed)
            assert (a.y, a.x, a.size, a.score) == (b.y, b.x, b.size, b.score)


def _adaptive(dim=512, n_classes=3, seed=0, **kw):
    base = PackedClassModel(random_hypervector(dim, seed, shape=(n_classes,)))
    kw.setdefault("prior", 4)
    kw.setdefault("max_step_frac", 0.08)
    return base, AdaptiveGuardedModel(base, seed_or_rng=seed, **kw)


def _drift_update(model, label, n=5, seed=0):
    from repro.core.hypervector import pack_bits, unpack_bits
    rng = np.random.default_rng(seed)
    row = unpack_bits(np.asarray(model.replicas[0, label]), model.dim)
    flips = rng.random(model.dim) < 0.03
    row[flips] = -row[flips]
    return OnlineUpdate(label, pack_bits(np.repeat(row[None], n, axis=0)))


class TestModelCheckpoint:
    def test_state_snapshot_restores_bitwise(self):
        _, model = _adaptive()
        model.propose(_drift_update(model, 0, seed=1))
        snap = model_state(model)
        want = model.replicas.copy()
        model.propose(_drift_update(model, 1, seed=2))
        load_model_state(model, snap)
        assert np.array_equal(model.replicas, want)
        assert model.scrub(force=True) == 0
        # a fresh snapshot of the restored model matches the original
        again = model_state(model)
        assert np.array_equal(again["replicas"], snap["replicas"])
        assert again["golden"] == snap["golden"]

    def test_save_restore_save_is_bitwise(self, tmp_path):
        base, model = _adaptive()
        model.propose(_drift_update(model, 0, seed=3))
        model.propose(OnlineUpdate(1, np.zeros((60, model.n_words),
                                               dtype=np.uint64)))  # rejected
        path = tmp_path / "model.npz"
        saved = save_model(model, path)
        assert saved["applied"] == 1 and saved["rejected"] == 1

        _, clone = _adaptive()
        restored = restore_model(clone, path)
        assert np.array_equal(restored["replicas"], saved["replicas"])
        assert np.array_equal(clone.replicas, model.replicas)
        assert clone.applied == 1 and clone.rejected == 1
        for a, b in zip(clone.counters, model.counters):
            assert np.array_equal(a.materialize(), b.materialize())
        queries = random_hypervector(model.dim, 9, shape=(8,))
        from repro.core.hypervector import pack_bits
        packed = pack_bits(queries)
        assert np.array_equal(clone.distances(packed),
                              model.distances(packed))

    def test_model_version_mismatch_rejected(self):
        _, model = _adaptive()
        snap = model_state(model)
        snap["version"] = 99
        with pytest.raises(CheckpointVersionError):
            load_model_state(model, snap)

    def test_model_file_missing_version_rejected(self, tmp_path):
        path = tmp_path / "bad_model.npz"
        np.savez_compressed(path, replicas=np.zeros((3, 2, 8),
                                                    dtype=np.uint64))
        _, model = _adaptive()
        with pytest.raises(CheckpointVersionError, match="version"):
            restore_model(model, path)

"""Checkpoint/restore round-trip tests.

The contract is *exactness*: ``save -> restore -> snapshot`` reproduces
the saved state bitwise, and a restored runtime serves the same frame
tail with identical detections to the runtime it was cloned from.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import (
    load_runtime_state,
    restore_runtime,
    runtime_state,
    save_runtime,
)

# float32-width values round-trip float64 storage exactly
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
track_row = st.tuples(st.integers(0, 1000), finite, finite,
                      st.floats(1.0, 100.0, width=32), finite,
                      st.integers(0, 50), st.integers(0, 50),
                      st.integers(0, 50), st.integers(0, 1))


def _snapshot_state(n_tracks=2, rung=1, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "format_version": 1,
        "tracks": [[i, float(rng.random()), float(rng.random()), 24.0,
                    float(rng.random()), 3, 1, 4, 1]
                   for i in range(n_tracks)],
        "tracker_next_id": n_tracks,
        "tracker_frames": 7,
        "rung": rung,
        "over_run": 1,
        "under_run": 0,
        "deadline_misses": 5,
        "next_index": 7,
        "frames_in": 9,
        "frames_done": 7,
        "predicted": 2,
        "cancelled": 1,
        "crashes": 0,
        "quarantine_passed": 6,
        "quarantine_rejected": {"nan": 1},
    }


class TestStateRoundTrip:
    def test_load_then_snapshot_is_identity(self, make_runtime):
        runtime = make_runtime()
        state = _snapshot_state()
        load_runtime_state(runtime, state)
        assert runtime_state(runtime) == state
        assert runtime.scheduler.current.name == "coarse"
        assert runtime.incidents.counts()["checkpoint_restored"] == 1

    # load_runtime_state overwrites every field it reads back, so reusing
    # one runtime across examples is sound
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(rows=st.lists(track_row, max_size=4), rung=st.integers(0, 3),
           misses=st.integers(0, 10_000))
    def test_any_state_round_trips_exactly(self, make_runtime, rows, rung,
                                           misses):
        runtime = make_runtime()
        state = _snapshot_state()
        state["tracks"] = [list(r) for r in rows]
        state["rung"] = rung
        state["deadline_misses"] = misses
        load_runtime_state(runtime, state)
        assert runtime_state(runtime) == state

    def test_unknown_version_rejected(self, make_runtime):
        state = _snapshot_state()
        state["format_version"] = 99
        with pytest.raises(ValueError):
            load_runtime_state(make_runtime(), state)


class TestFileRoundTrip:
    def test_save_restore_save_is_bitwise(self, make_runtime, video,
                                          tmp_path):
        frames, _ = video
        runtime = make_runtime()
        list(runtime.run(frames[:3]))
        path = tmp_path / "runtime.npz"
        saved = save_runtime(runtime, path, frame=2)
        assert runtime.incidents.counts()["checkpoint_saved"] == 1

        clone = make_runtime()
        restored = restore_runtime(clone, path)
        assert restored == saved
        assert runtime_state(clone) == saved

    def test_restored_runtime_serves_identical_tail(self, make_runtime,
                                                    video, tmp_path):
        frames, _ = video
        runtime = make_runtime()
        list(runtime.run(frames[:3]))
        path = tmp_path / "runtime.npz"
        save_runtime(runtime, path)
        clone = make_runtime()
        restore_runtime(clone, path)
        # the original continues on its warm delta path; the clone's first
        # tail frame falls back to full extraction - results must still be
        # bitwise identical
        for a, b in zip(runtime.run(frames[3:]), clone.run(frames[3:])):
            assert (a.index, a.mode, a.detections) == \
                (b.index, b.mode, b.detections)
            assert [(t.track_id, t.y, t.x, t.size, t.score)
                    for t in a.tracks] == \
                [(t.track_id, t.y, t.x, t.size, t.score) for t in b.tracks]

    def test_tracks_survive_with_lifecycle_counters(self, make_runtime,
                                                    video, tmp_path):
        frames, _ = video
        runtime = make_runtime()
        list(runtime.run(frames))
        assert runtime.tracker.tracks, "the clip should produce a track"
        path = tmp_path / "runtime.npz"
        save_runtime(runtime, path)
        clone = make_runtime()
        restore_runtime(clone, path)
        for a, b in zip(runtime.tracker.tracks, clone.tracker.tracks):
            assert (a.track_id, a.hits, a.misses, a.age, a.confirmed) == \
                (b.track_id, b.hits, b.misses, b.age, b.confirmed)
            assert (a.y, a.x, a.size, a.score) == (b.y, b.x, b.size, b.score)

"""Tests for the stage-timer / op-counter instrumentation layer."""

import numpy as np
import pytest

from repro.hardware.opcount import profile_from_counts
from repro.hardware.platforms import CORTEX_A53
from repro.profiling import NULL_PROFILER, Profiler, StageStats


class TestStageStats:
    def test_total_ops_excludes_memory(self):
        stats = StageStats(ops={"bit": 10.0, "int_add": 5.0,
                                "mem_bytes": 100.0})
        assert stats.total_ops() == 15.0


class TestProfiler:
    def test_stage_times_accumulate(self):
        prof = Profiler()
        with prof.stage("a"):
            pass
        with prof.stage("a"):
            pass
        assert prof.stats["a"].calls == 2
        assert prof.stats["a"].seconds >= 0.0

    def test_add_ops_accumulates(self):
        prof = Profiler()
        prof.add_ops("x", items=3, bit=100, rng_bit=50)
        prof.add_ops("x", items=2, bit=10)
        assert prof.stats["x"].items == 5
        assert prof.stats["x"].ops == {"bit": 110.0, "rng_bit": 50.0}

    def test_zero_counts_not_recorded(self):
        prof = Profiler()
        prof.add_ops("x", bit=0)
        assert prof.stats["x"].ops == {}

    def test_add_profile(self):
        prof = Profiler()
        prof.add_profile("y", profile_from_counts({"bit": 7.0}), items=1)
        assert prof.stats["y"].ops["bit"] == 7.0

    def test_op_totals_sum_across_stages(self):
        prof = Profiler()
        prof.add_ops("a", bit=1, int_add=2)
        prof.add_ops("b", bit=10)
        assert prof.op_totals() == {"bit": 11.0, "int_add": 2.0}

    def test_total_seconds_and_reset(self):
        prof = Profiler()
        with prof.stage("a"):
            pass
        assert prof.total_seconds() >= 0.0
        prof.reset()
        assert prof.stats == {} and prof.total_seconds() == 0.0

    def test_table_lists_every_stage(self):
        prof = Profiler()
        with prof.stage("fields"):
            pass
        prof.add_ops("fields", items=9, bit=1024)
        text = prof.table("scan")
        assert "scan:" in text and "fields" in text and "total" in text

    def test_disabled_profiler_records_nothing(self):
        prof = Profiler(enabled=False)
        with prof.stage("a"):
            prof.add_ops("a", bit=5)
        prof.record("a", 1.0)
        assert prof.stats == {}


class TestPercentiles:
    def test_record_feeds_the_percentile_window(self):
        prof = Profiler()
        values = [0.01 * i for i in range(1, 101)]
        for v in values:
            prof.record("frame", v)
        pct = prof.percentiles("frame")
        assert pct["p50"] == pytest.approx(np.percentile(values, 50))
        assert pct["p95"] == pytest.approx(np.percentile(values, 95))
        assert pct["p99"] == pytest.approx(np.percentile(values, 99))
        assert prof.stats["frame"].calls == 100
        assert prof.stats["frame"].seconds == pytest.approx(sum(values))

    def test_record_accumulates_items(self):
        prof = Profiler()
        prof.record("frame", 0.5, items=3)
        prof.record("frame", 0.5, items=2)
        assert prof.stats["frame"].items == 5

    def test_window_restricts_to_recent_samples(self):
        prof = Profiler()
        for _ in range(10):
            prof.record("frame", 0.0)
        for _ in range(5):
            prof.record("frame", 1.0)
        assert prof.percentiles("frame", window=5)["p50"] == 1.0
        assert prof.percentiles("frame")["p50"] == 0.0

    def test_unknown_stage_reports_zeros(self):
        assert Profiler().percentiles("nope") == \
            {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_empty_stage_reports_zeros(self):
        prof = Profiler()
        prof.add_ops("ops_only", bit=5)  # counted but never timed
        assert prof.percentiles("ops_only")["p95"] == 0.0

    def test_stage_context_feeds_the_same_window(self):
        prof = Profiler()
        with prof.stage("s"):
            pass
        assert prof.percentiles("s")["p50"] >= 0.0
        assert len(prof.stats["s"].samples) == 1

    def test_table_includes_percentile_columns(self):
        prof = Profiler()
        prof.record("frame", 0.25)
        text = prof.table()
        assert "p50ms" in text and "p95ms" in text and "250.00" in text

    def test_null_profiler_is_disabled(self):
        assert NULL_PROFILER.enabled is False


class TestOpcountBridge:
    def test_measured_counts_convert_to_platform_time(self):
        prof = Profiler()
        prof.add_ops("fields", bit=1e6, int_add=1e5, rng_bit=1e6,
                     mem_bytes=1e5)
        platform_profile = profile_from_counts(prof.op_totals())
        assert CORTEX_A53.time(platform_profile) > 0.0
        assert CORTEX_A53.energy(platform_profile) > 0.0

    def test_unknown_op_class_rejected(self):
        with pytest.raises(ValueError):
            profile_from_counts({"quantum_flops": 1.0})


class TestProfilerMerge:
    def test_counts_and_samples_add(self):
        a, b = Profiler(), Profiler()
        a.add_ops("x", items=2, bit=10)
        a.record("frame", 0.1)
        b.add_ops("x", items=3, bit=5, int_add=7)
        b.record("frame", 0.3)
        b.record("only_b", 0.2)
        assert a.merge(b) is a
        assert a.stats["x"].items == 5
        assert a.stats["x"].ops == {"bit": 15.0, "int_add": 7.0}
        assert a.stats["frame"].calls == 2
        assert list(a.stats["frame"].samples) == [0.1, 0.3]
        assert a.stats["only_b"].calls == 1

    def test_other_profiler_untouched(self):
        a, b = Profiler(), Profiler()
        b.add_ops("x", items=1, bit=4)
        a.merge(b)
        a.add_ops("x", items=1, bit=1)
        assert b.stats["x"].items == 1 and b.stats["x"].ops == {"bit": 4.0}

    def test_self_and_null_merges_are_noops(self):
        a = Profiler()
        a.record("frame", 0.1)
        assert a.merge(a) is a
        assert a.stats["frame"].calls == 1
        a.merge(NULL_PROFILER)
        assert a.stats["frame"].calls == 1
        assert NULL_PROFILER.merge(a) is NULL_PROFILER

    def test_merged_percentiles_cover_both_windows(self):
        a, b = Profiler(), Profiler()
        for _ in range(4):
            a.record("frame", 0.1)
        for _ in range(4):
            b.record("frame", 0.5)
        a.merge(b)
        pct = a.percentiles("frame")
        assert pct["p50"] == pytest.approx(0.3)
        assert pct["p95"] == pytest.approx(0.5, rel=0.1)

"""Tests for the stage-timer / op-counter instrumentation layer."""

import numpy as np
import pytest

from repro.hardware.opcount import profile_from_counts
from repro.hardware.platforms import CORTEX_A53
from repro.profiling import NULL_PROFILER, Profiler, StageStats


class TestStageStats:
    def test_total_ops_excludes_memory(self):
        stats = StageStats(ops={"bit": 10.0, "int_add": 5.0,
                                "mem_bytes": 100.0})
        assert stats.total_ops() == 15.0


class TestProfiler:
    def test_stage_times_accumulate(self):
        prof = Profiler()
        with prof.stage("a"):
            pass
        with prof.stage("a"):
            pass
        assert prof.stats["a"].calls == 2
        assert prof.stats["a"].seconds >= 0.0

    def test_add_ops_accumulates(self):
        prof = Profiler()
        prof.add_ops("x", items=3, bit=100, rng_bit=50)
        prof.add_ops("x", items=2, bit=10)
        assert prof.stats["x"].items == 5
        assert prof.stats["x"].ops == {"bit": 110.0, "rng_bit": 50.0}

    def test_zero_counts_not_recorded(self):
        prof = Profiler()
        prof.add_ops("x", bit=0)
        assert prof.stats["x"].ops == {}

    def test_add_profile(self):
        prof = Profiler()
        prof.add_profile("y", profile_from_counts({"bit": 7.0}), items=1)
        assert prof.stats["y"].ops["bit"] == 7.0

    def test_op_totals_sum_across_stages(self):
        prof = Profiler()
        prof.add_ops("a", bit=1, int_add=2)
        prof.add_ops("b", bit=10)
        assert prof.op_totals() == {"bit": 11.0, "int_add": 2.0}

    def test_total_seconds_and_reset(self):
        prof = Profiler()
        with prof.stage("a"):
            pass
        assert prof.total_seconds() >= 0.0
        prof.reset()
        assert prof.stats == {} and prof.total_seconds() == 0.0

    def test_table_lists_every_stage(self):
        prof = Profiler()
        with prof.stage("fields"):
            pass
        prof.add_ops("fields", items=9, bit=1024)
        text = prof.table("scan")
        assert "scan:" in text and "fields" in text and "total" in text

    def test_disabled_profiler_records_nothing(self):
        prof = Profiler(enabled=False)
        with prof.stage("a"):
            prof.add_ops("a", bit=5)
        assert prof.stats == {}

    def test_null_profiler_is_disabled(self):
        assert NULL_PROFILER.enabled is False


class TestOpcountBridge:
    def test_measured_counts_convert_to_platform_time(self):
        prof = Profiler()
        prof.add_ops("fields", bit=1e6, int_add=1e5, rng_bit=1e6,
                     mem_bytes=1e5)
        platform_profile = profile_from_counts(prof.op_totals())
        assert CORTEX_A53.time(platform_profile) > 0.0
        assert CORTEX_A53.energy(platform_profile) > 0.0

    def test_unknown_op_class_rejected(self):
        with pytest.raises(ValueError):
            profile_from_counts({"quantum_flops": 1.0})

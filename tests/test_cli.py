"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.task == "face" and args.dim == 4096

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bad_magnitude_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--magnitude", "l3"])


class TestCommands:
    def test_train_and_evaluate_roundtrip(self, tmp_path):
        model = tmp_path / "m.npz"
        out = io.StringIO()
        code = main([
            "train", "--dim", "512", "--size", "24",
            "--train-samples", "24", "--test-samples", "12",
            "--epochs", "3", "--save", str(model),
        ], out=out)
        assert code == 0
        assert model.exists()
        assert "test accuracy" in out.getvalue()

        out = io.StringIO()
        code = main([
            "evaluate", str(model), "--size", "24", "--samples", "12",
        ], out=out)
        assert code == 0
        assert "accuracy on 12 fresh samples" in out.getvalue()

    def test_detect_writes_overlay(self, tmp_path):
        overlay = tmp_path / "scene.pgm"
        out = io.StringIO()
        code = main([
            "detect", "--dim", "512", "--scene-size", "72",
            "--window", "24", "--output", str(overlay),
        ], out=out)
        assert code == 0
        assert overlay.exists()
        assert "detection map" in out.getvalue()

    def test_detect_profile_reports_throughput(self):
        out = io.StringIO()
        code = main([
            "detect", "--dim", "512", "--scene-size", "48",
            "--window", "24", "--stride", "8", "--profile",
        ], out=out)
        text = out.getvalue()
        assert code == 0
        assert "profile (shared engine, dense backend)" in text
        assert "fields" in text and "windows/s" in text
        assert "modeled Cortex-A53" in text

    def test_detect_engine_choices(self):
        for engine in ("shared", "perwindow", "legacy"):
            out = io.StringIO()
            code = main([
                "detect", "--dim", "256", "--scene-size", "48",
                "--window", "24", "--engine", engine, "--profile",
            ], out=out)
            assert code == 0
            assert f"profile ({engine} engine" in out.getvalue()
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--engine", "warp"])

    def test_detect_packed_backend_with_workers(self):
        out = io.StringIO()
        code = main([
            "detect", "--dim", "256", "--scene-size", "48",
            "--window", "24", "--engine", "shared",
            "--backend", "packed", "--workers", "2", "--profile",
        ], out=out)
        text = out.getvalue()
        assert code == 0
        assert "profile (shared engine, packed backend)" in text
        assert "detection map" in text

    def test_detect_packed_requires_shared(self):
        with pytest.raises(ValueError):
            main([
                "detect", "--dim", "256", "--scene-size", "48",
                "--window", "24", "--engine", "legacy",
                "--backend", "packed",
            ], out=io.StringIO())

    def test_report(self):
        out = io.StringIO()
        assert main(["report", "--dim", "2048"], out=out) == 0
        text = out.getvalue()
        assert "speedup" in text and "per-epoch" in text

"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.task == "face" and args.dim == 4096

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_bad_magnitude_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--magnitude", "l3"])


class TestCommands:
    def test_train_and_evaluate_roundtrip(self, tmp_path):
        model = tmp_path / "m.npz"
        out = io.StringIO()
        code = main([
            "train", "--dim", "512", "--size", "24",
            "--train-samples", "24", "--test-samples", "12",
            "--epochs", "3", "--save", str(model),
        ], out=out)
        assert code == 0
        assert model.exists()
        assert "test accuracy" in out.getvalue()

        out = io.StringIO()
        code = main([
            "evaluate", str(model), "--size", "24", "--samples", "12",
        ], out=out)
        assert code == 0
        assert "accuracy on 12 fresh samples" in out.getvalue()

    def test_detect_writes_overlay(self, tmp_path):
        overlay = tmp_path / "scene.pgm"
        out = io.StringIO()
        code = main([
            "detect", "--dim", "512", "--scene-size", "72",
            "--window", "24", "--output", str(overlay),
        ], out=out)
        assert code == 0
        assert overlay.exists()
        assert "detection map" in out.getvalue()

    def test_detect_profile_reports_throughput(self):
        out = io.StringIO()
        code = main([
            "detect", "--dim", "512", "--scene-size", "48",
            "--window", "24", "--stride", "8", "--profile",
        ], out=out)
        text = out.getvalue()
        assert code == 0
        assert "profile (shared engine, dense backend)" in text
        assert "fields" in text and "windows/s" in text
        assert "modeled Cortex-A53" in text

    def test_detect_engine_choices(self):
        for engine in ("shared", "perwindow", "legacy"):
            out = io.StringIO()
            code = main([
                "detect", "--dim", "256", "--scene-size", "48",
                "--window", "24", "--engine", engine, "--profile",
            ], out=out)
            assert code == 0
            assert f"profile ({engine} engine" in out.getvalue()
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--engine", "warp"])

    def test_detect_packed_backend_with_workers(self):
        out = io.StringIO()
        code = main([
            "detect", "--dim", "256", "--scene-size", "48",
            "--window", "24", "--engine", "shared",
            "--backend", "packed", "--workers", "2", "--profile",
        ], out=out)
        text = out.getvalue()
        assert code == 0
        assert "profile (shared engine, packed backend)" in text
        assert "detection map" in text

    def test_detect_packed_requires_shared(self):
        with pytest.raises(ValueError):
            main([
                "detect", "--dim", "256", "--scene-size", "48",
                "--window", "24", "--engine", "legacy",
                "--backend", "packed",
            ], out=io.StringIO())

    def test_report(self):
        out = io.StringIO()
        assert main(["report", "--dim", "2048"], out=out) == 0
        text = out.getvalue()
        assert "speedup" in text and "per-epoch" in text


class TestStreamCommand:
    def test_stream_reports_reuse_and_tracks(self):
        out = io.StringIO()
        code = main([
            "stream", "--frames", "4", "--dim", "256", "--scene-size", "48",
            "--window", "24", "--profile",
        ], out=out)
        text = out.getvalue()
        assert code == 0
        assert "streaming 4 frames" in text
        assert "delta" in text and "pixel reuse" in text
        assert "frames/s" in text
        assert "delta_fields" in text  # profiler table includes delta stages

    def test_stream_no_incremental_runs_full(self):
        out = io.StringIO()
        code = main([
            "stream", "--frames", "3", "--dim", "256", "--scene-size", "48",
            "--window", "24", "--no-incremental", "--backend", "packed",
        ], out=out)
        text = out.getvalue()
        assert code == 0
        assert "incremental=off" in text
        assert "0 patched" in text

    def test_stream_rejects_bad_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream", "--policy", "newest"])


class TestRobustnessCommand:
    def test_sweep_writes_json_and_prints_table(self, tmp_path):
        import json
        output = tmp_path / "robustness.json"
        out = io.StringIO()
        code = main([
            "robustness", "--rates", "0,0.05", "--images", "2",
            "--dim", "256", "--scene-size", "48", "--window", "24",
            "--output", str(output),
        ], out=out)
        text = out.getvalue()
        assert code == 0
        assert output.exists()
        assert "recall" in text and "worst recall drop" in text
        payload = json.loads(output.read_text())
        backends = {row["backend"] for row in payload["rows"]}
        assert backends == {"dense", "packed"}
        rates = {row["rate"] for row in payload["rows"]}
        assert rates == {0.0, 0.05}

    def test_recall_drop_gate(self, tmp_path):
        # an impossible tolerance must fail the gate unless the sweep is
        # perfectly clean; a generous one must pass - same tiny campaign
        common = ["robustness", "--rates", "0,0.4", "--images", "2",
                  "--dim", "256", "--scene-size", "48", "--window", "24",
                  "--attack", "model",
                  "--output", str(tmp_path / "r.json")]
        out = io.StringIO()
        code = main(common + ["--max-recall-drop", "1.0"], out=out)
        assert code == 0
        assert "within tolerance" in out.getvalue()

    def test_dense_only_backend(self, tmp_path):
        import json
        output = tmp_path / "dense.json"
        out = io.StringIO()
        code = main([
            "robustness", "--rates", "0", "--images", "1", "--dim", "256",
            "--backend", "dense", "--output", str(output),
        ], out=out)
        assert code == 0
        payload = json.loads(output.read_text())
        assert {row["backend"] for row in payload["rows"]} == {"dense"}

    def test_guarded_model_attack(self, tmp_path):
        out = io.StringIO()
        code = main([
            "robustness", "--rates", "0,0.1", "--images", "2",
            "--dim", "256", "--attack", "model", "--guard-replicas", "3",
            "--max-recall-drop", "0.0",
            "--output", str(tmp_path / "g.json"),
        ], out=out)
        # guard repairs the corrupted replica: zero drop tolerance holds
        assert code == 0

    def test_report_prints_protection_overhead(self):
        out = io.StringIO()
        assert main(["report", "--dim", "1024"], out=out) == 0
        assert "protection overhead" in out.getvalue()

"""Committed benchmark results stay consistent.

Every ``benchmarks/results/*.json`` must parse, round-trip through the
same canonical encoding ``benchmarks.common.write_json`` uses, and have
a human-readable ``.txt`` twin written by the same benchmark (the repo's
convention: machine-readable and human-readable views of one run, so a
results diff is reviewable).  A JSON without a twin means a benchmark's
writers drifted apart.
"""

import json
from pathlib import Path

import pytest

RESULTS = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
JSONS = sorted(RESULTS.glob("*.json"))


def test_results_directory_is_populated():
    assert JSONS, f"no committed results under {RESULTS}"


@pytest.mark.parametrize("path", JSONS, ids=lambda p: p.stem)
def test_json_round_trips(path):
    text = path.read_text()
    payload = json.loads(text)
    assert isinstance(payload, dict)
    assert "scale" in payload, "write_json stamps the scale knob"
    canonical = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    assert text == canonical, \
        f"{path.name} was not written by benchmarks.common.write_json"


@pytest.mark.parametrize("path", JSONS, ids=lambda p: p.stem)
def test_json_has_text_twin(path):
    twin = path.with_suffix(".txt")
    assert twin.exists(), \
        f"{path.name} has no {twin.name}: the benchmark calls write_json " \
        f"but not write_report"
    assert twin.read_text().strip(), f"{twin.name} is empty"

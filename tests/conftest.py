"""Shared fixtures: codecs, images and datasets reused across the suite.

Session-scoped fixtures hold the expensive objects (large codecs, generated
datasets) so the suite stays fast; tests must not mutate them.

Determinism: every test starts from a seed derived from its own node id
(global NumPy and ``random`` state), and Hypothesis runs derandomized -
so a failure reproduces on the next run and one test's draws cannot
shift another's.
"""

import random
import zlib

import numpy as np
import pytest

from repro.core import StochasticCodec
from repro.datasets import make_emotion_dataset, make_face_dataset

try:
    from hypothesis import settings
    settings.register_profile("repro", derandomize=True, deadline=None)
    settings.load_profile("repro")
except ImportError:  # pragma: no cover - hypothesis is a dev dependency
    pass


@pytest.fixture(autouse=True)
def _deterministic_seed(request):
    """Seed the global RNGs per test, stably derived from the node id."""
    seed = zlib.crc32(request.node.nodeid.encode("utf-8"))
    np.random.seed(seed & 0xFFFFFFFF)
    random.seed(seed)


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def codec():
    """High-dimensional codec: decode noise ~0.011, tight assertions OK."""
    return StochasticCodec(8192, seed_or_rng=0)


@pytest.fixture(scope="session")
def small_codec():
    """Low-dimensional codec for fast pipeline-level tests."""
    return StochasticCodec(512, seed_or_rng=0)


@pytest.fixture(scope="session")
def disc_image():
    """Structured 16x16 test image: bright disc on dark background."""
    yy, xx = np.mgrid[0:16, 0:16]
    r = np.hypot(yy - 8, xx - 8)
    return np.clip(1.0 - r / 8.0, 0.0, 1.0) * 0.8 + 0.1


@pytest.fixture(scope="session")
def face_data():
    """Tiny face/no-face dataset: (train_x, train_y, test_x, test_y)."""
    xtr, ytr = make_face_dataset(48, size=24, seed_or_rng=0)
    xte, yte = make_face_dataset(24, size=24, seed_or_rng=1)
    return xtr, ytr, xte, yte


@pytest.fixture(scope="session")
def emotion_data():
    """Tiny 7-class emotion dataset."""
    xtr, ytr = make_emotion_dataset(56, size=24, seed_or_rng=0)
    xte, yte = make_emotion_dataset(28, size=24, seed_or_rng=1)
    return xtr, ytr, xte, yte

"""Tests for the SEC-DED Hamming(72,64) codec (reliability/ecc.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import (
    ECC_CLEAN,
    ECC_CORRECTED,
    ECC_DETECTED,
    ecc_correct,
    ecc_correct_array,
    ecc_encode,
    ecc_encode_array,
    ecc_overhead_bytes,
)

words64 = st.integers(min_value=0, max_value=2**64 - 1)


def as_words(values):
    return np.asarray(values, dtype=np.uint64)


class TestEncode:
    def test_one_parity_byte_per_word(self):
        words = as_words([[0, 1, 2**63], [7, 8, 9]])
        parity = ecc_encode(words)
        assert parity.dtype == np.uint8
        assert parity.shape == words.shape

    def test_deterministic(self):
        words = as_words([0xDEADBEEF, 0, 2**64 - 1])
        assert np.array_equal(ecc_encode(words), ecc_encode(words))

    def test_overhead_is_one_byte_per_word(self):
        assert ecc_overhead_bytes(17) == 17


class TestCorrect:
    def test_clean_words_pass_through(self):
        words = as_words([3, 1 << 40, 2**64 - 1])
        parity = ecc_encode(words)
        fixed, _, status = ecc_correct(words.copy(), parity.copy())
        assert np.array_equal(fixed, words)
        assert np.all(status == ECC_CLEAN)

    @settings(max_examples=40, deadline=None)
    @given(word=words64, bit=st.integers(0, 63))
    def test_every_single_data_bit_flip_corrected(self, word, bit):
        words = as_words([word])
        parity = ecc_encode(words)
        corrupted = words ^ np.uint64(1 << bit)
        fixed, _, status = ecc_correct(corrupted, parity.copy())
        assert status[0] == ECC_CORRECTED
        assert fixed[0] == words[0]

    @settings(max_examples=40, deadline=None)
    @given(word=words64, bit=st.integers(0, 7))
    def test_every_single_parity_bit_flip_corrected(self, word, bit):
        words = as_words([word])
        parity = ecc_encode(words)
        bad_parity = parity ^ np.uint8(1 << bit)
        fixed, _, status = ecc_correct(words.copy(), bad_parity)
        assert status[0] == ECC_CORRECTED
        assert fixed[0] == words[0]

    @settings(max_examples=40, deadline=None)
    @given(word=words64,
           bits=st.lists(st.integers(0, 63), min_size=2, max_size=2,
                         unique=True))
    def test_every_double_bit_flip_detected_not_miscorrected(self, word,
                                                             bits):
        words = as_words([word])
        parity = ecc_encode(words)
        corrupted = words.copy()
        for bit in bits:
            corrupted ^= np.uint64(1 << bit)
        _, _, status = ecc_correct(corrupted, parity.copy())
        assert status[0] == ECC_DETECTED

    def test_mixed_batch_statuses(self):
        words = as_words([5, 6, 7])
        parity = ecc_encode(words)
        corrupted = words.copy()
        corrupted[1] ^= np.uint64(1)                 # single flip
        corrupted[2] ^= np.uint64(0b11)              # double flip
        _, _, status = ecc_correct(corrupted, parity.copy())
        assert list(status) == [ECC_CLEAN, ECC_CORRECTED, ECC_DETECTED]


class TestArrayCodec:
    @pytest.mark.parametrize("dtype", [np.int8, np.uint8, np.int32,
                                       np.float64, np.uint64])
    def test_roundtrip_any_dtype(self, dtype):
        rng = np.random.default_rng(0)
        arr = (rng.integers(0, 100, size=64)
               .astype(dtype, copy=False).reshape(8, 8))
        parity = ecc_encode_array(arr)
        corrected, detected = ecc_correct_array(arr, parity)
        assert corrected == 0 and detected == 0

    def test_single_bit_flip_repaired_in_place(self):
        rng = np.random.default_rng(1)
        arr = rng.integers(0, 2**63, size=32, dtype=np.uint64)
        golden = arr.copy()
        parity = ecc_encode_array(arr)
        arr[5] ^= np.uint64(1 << 17)
        corrected, detected = ecc_correct_array(arr, parity)
        assert corrected == 1 and detected == 0
        assert np.array_equal(arr, golden)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(8, 64),
           bit=st.integers(0, 63))
    def test_single_flip_repaired_any_word(self, seed, n, bit):
        rng = np.random.default_rng(seed)
        arr = rng.integers(0, 2**63, size=n, dtype=np.uint64)
        golden = arr.copy()
        parity = ecc_encode_array(arr)
        victim = int(rng.integers(0, n))
        arr[victim] ^= np.uint64(1 << bit)
        corrected, detected = ecc_correct_array(arr, parity)
        assert (corrected, detected) == (1, 0)
        assert np.array_equal(arr, golden)

    def test_double_flip_in_one_word_detected_not_silently_wrong(self):
        arr = np.arange(16, dtype=np.uint64)
        parity = ecc_encode_array(arr)
        arr[3] ^= np.uint64((1 << 2) | (1 << 44))
        corrected, detected = ecc_correct_array(arr, parity)
        assert detected == 1 and corrected == 0

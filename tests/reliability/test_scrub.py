"""Tests for the shared-engine scene-cache scrubber.

A corrupted cache entry must never be served silently: with ``scrub=True``
the engine digest-verifies entries on hit, ECC-repairs what SEC-DED can
correct in place (no recompute), throws the rest away and recomputes,
restoring bitwise-clean detection scores either way.
"""

import numpy as np
import pytest

from repro.pipeline.detector import SlidingWindowDetector, make_scene
from repro.pipeline.engine import _fields_arrays
from repro.pipeline.hdface import HDFacePipeline


@pytest.fixture(scope="module")
def face_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
                          epochs=5, seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="module")
def scene():
    out, _ = make_scene(48, [(8, 16)], window=24, seed_or_rng=3)
    return out


@pytest.mark.parametrize("backend", ["dense", "packed"])
class TestCacheScrubber:
    def test_corrupted_entry_recomputed_on_hit(self, face_pipe, scene,
                                               backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=True)
        clean = det.scan(scene).scores
        corrupted = det.engine.corrupt_cache(0.3, seed_or_rng=0)
        assert corrupted > 0
        again = det.scan(scene).scores
        assert np.array_equal(again, clean)
        info = det.engine.cache_info()
        assert info["scrub"] is True
        assert info["scrub_mismatches"] > 0
        assert info["scrub_checks"] >= info["scrub_mismatches"]

    def test_without_scrub_corruption_is_served(self, face_pipe, scene,
                                                backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=False)
        clean = det.scan(scene).scores
        # heavy corruption so at least one window's score must move
        assert det.engine.corrupt_cache(0.5, seed_or_rng=0) > 0
        assert not np.array_equal(det.scan(scene).scores, clean)

    def test_scrubbed_rescan_costs_one_recompute(self, face_pipe, scene,
                                                 backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=True)
        det.scan(scene)
        det.engine.corrupt_cache(0.3, seed_or_rng=1)
        det.scan(scene)
        misses_after_repair = det.engine.cache_info()["misses"]
        det.scan(scene)  # entry was recomputed and re-cached: clean hit now
        info = det.engine.cache_info()
        assert info["misses"] == misses_after_repair
        mismatches = info["scrub_mismatches"]
        det.scan(scene)
        assert det.engine.cache_info()["scrub_mismatches"] == mismatches


def flip_one_cached_bit(engine):
    """Flip a single stored bit of the first cached fields buffer."""
    entry = next(iter(engine._cache.values()))
    first = _fields_arrays(entry.fields)[0]
    first.reshape(-1).view(np.uint8)[0] ^= np.uint8(1)


@pytest.mark.parametrize("backend", ["dense", "packed"])
class TestRepairInPlace:
    def test_single_bit_flip_repaired_without_recompute(self, face_pipe,
                                                        scene, backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=True)
        clean = det.scan(scene).scores
        misses = det.engine.cache_info()["misses"]
        flip_one_cached_bit(det.engine)
        assert np.array_equal(det.scan(scene).scores, clean)
        info = det.engine.cache_info()
        assert info["misses"] == misses  # repaired in place, no recompute
        assert info["scrub_repairs"] >= 1
        assert info["ecc_corrected_words"] >= 1
        assert info["scrub_evictions"] == 0

    def test_background_sweep_repairs_without_any_access(self, face_pipe,
                                                         scene, backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=True)
        clean = det.scan(scene).scores
        flip_one_cached_bit(det.engine)
        report = det.engine.scrub_cache()
        assert report["mismatches"] >= 1
        assert report["repaired"] >= 1 and report["evicted"] == 0
        misses = det.engine.cache_info()["misses"]
        assert np.array_equal(det.scan(scene).scores, clean)
        assert det.engine.cache_info()["misses"] == misses

    def test_heavy_corruption_falls_back_to_eviction(self, face_pipe, scene,
                                                     backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=True)
        clean = det.scan(scene).scores
        assert det.engine.corrupt_cache(0.3, seed_or_rng=0) > 0
        report = det.engine.scrub_cache()
        assert report["mismatches"] >= 1
        assert np.array_equal(det.scan(scene).scores, clean)


@pytest.mark.parametrize("backend", ["dense", "packed"])
class TestDeltaBaseVerification:
    """``delta_update`` refreshes digests after patching, so it must not
    trust a corrupted base entry - that would launder the corruption into
    the new golden digest and serve it silently forever after."""

    def next_scene(self, scene):
        out = scene.copy()
        out[:8, :8] = np.clip(out[:8, :8] + 0.25, 0.0, 1.0)
        return out

    def test_corrupted_base_not_laundered_through_delta(self, face_pipe,
                                                        scene, backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=True)
        det.scan(scene)
        scene2 = self.next_scene(scene)
        reference = SlidingWindowDetector(
            face_pipe, window=24, stride=8, backend=backend,
            scrub=True).scan(scene2).scores
        assert det.engine.corrupt_cache(0.3, seed_or_rng=0) > 0
        det.engine.delta_update(scene, scene2)
        assert np.array_equal(det.scan(scene2).scores, reference)
        assert det.engine.cache_info()["scrub_mismatches"] >= 1

    def test_single_bit_base_corruption_repaired_then_delta_reused(
            self, face_pipe, scene, backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=True)
        det.scan(scene)
        scene2 = self.next_scene(scene)
        reference = SlidingWindowDetector(
            face_pipe, window=24, stride=8, backend=backend,
            scrub=True).scan(scene2).scores
        flip_one_cached_bit(det.engine)
        report = det.engine.delta_update(scene, scene2)
        assert np.array_equal(det.scan(scene2).scores, reference)
        info = det.engine.cache_info()
        assert info["scrub_repairs"] >= 1
        assert info["ecc_corrected_words"] >= 1


class TestCorruptCache:
    def test_empty_cache_reports_zero(self, face_pipe):
        det = SlidingWindowDetector(face_pipe, window=24, backend="dense",
                                    scrub=True)
        assert det.engine.corrupt_cache(0.5, seed_or_rng=0) == 0

    def test_rate_zero_leaves_scores_clean_without_scrub(self, face_pipe,
                                                         scene):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend="packed", scrub=False)
        clean = det.scan(scene).scores
        det.engine.corrupt_cache(0.0, seed_or_rng=0)
        assert np.array_equal(det.scan(scene).scores, clean)

"""Tests for the shared-engine scene-cache scrubber.

A corrupted cache entry must never be served silently: with ``scrub=True``
the engine digest-verifies entries on hit, throws corrupted ones away and
recomputes, restoring bitwise-clean detection scores.
"""

import numpy as np
import pytest

from repro.pipeline.detector import SlidingWindowDetector, make_scene
from repro.pipeline.hdface import HDFacePipeline


@pytest.fixture(scope="module")
def face_pipe(face_data):
    xtr, ytr, _, _ = face_data
    return HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
                          epochs=5, seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="module")
def scene():
    out, _ = make_scene(48, [(8, 16)], window=24, seed_or_rng=3)
    return out


@pytest.mark.parametrize("backend", ["dense", "packed"])
class TestCacheScrubber:
    def test_corrupted_entry_recomputed_on_hit(self, face_pipe, scene,
                                               backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=True)
        clean = det.scan(scene).scores
        corrupted = det.engine.corrupt_cache(0.3, seed_or_rng=0)
        assert corrupted > 0
        again = det.scan(scene).scores
        assert np.array_equal(again, clean)
        info = det.engine.cache_info()
        assert info["scrub"] is True
        assert info["scrub_mismatches"] > 0
        assert info["scrub_checks"] >= info["scrub_mismatches"]

    def test_without_scrub_corruption_is_served(self, face_pipe, scene,
                                                backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=False)
        clean = det.scan(scene).scores
        # heavy corruption so at least one window's score must move
        assert det.engine.corrupt_cache(0.5, seed_or_rng=0) > 0
        assert not np.array_equal(det.scan(scene).scores, clean)

    def test_scrubbed_rescan_costs_one_recompute(self, face_pipe, scene,
                                                 backend):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend=backend, scrub=True)
        det.scan(scene)
        det.engine.corrupt_cache(0.3, seed_or_rng=1)
        det.scan(scene)
        misses_after_repair = det.engine.cache_info()["misses"]
        det.scan(scene)  # entry was recomputed and re-cached: clean hit now
        info = det.engine.cache_info()
        assert info["misses"] == misses_after_repair
        mismatches = info["scrub_mismatches"]
        det.scan(scene)
        assert det.engine.cache_info()["scrub_mismatches"] == mismatches


class TestCorruptCache:
    def test_empty_cache_reports_zero(self, face_pipe):
        det = SlidingWindowDetector(face_pipe, window=24, backend="dense",
                                    scrub=True)
        assert det.engine.corrupt_cache(0.5, seed_or_rng=0) == 0

    def test_rate_zero_leaves_scores_clean_without_scrub(self, face_pipe,
                                                         scene):
        det = SlidingWindowDetector(face_pipe, window=24, stride=8,
                                    backend="packed", scrub=False)
        clean = det.scan(scene).scores
        det.engine.corrupt_cache(0.0, seed_or_rng=0)
        assert np.array_equal(det.scan(scene).scores, clean)

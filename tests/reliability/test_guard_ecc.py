"""Tests for the ``check="ecc"`` guarded-model repair ladder.

ECC mode replaces R-way modular redundancy with a single replica plus a
SEC-DED parity sidecar and a graded repair ladder: ECC-correct ->
counter-rematerialize -> replica-vote -> degrade.  Every rung's outcome
is digest-verified, so nothing wrong is ever silently re-adopted.
"""

import numpy as np
import pytest

from repro.core.hypervector import pack_bits, random_hypervector
from repro.core.packed import PackedClassModel
from repro.reliability import (
    REPAIR_RUNGS,
    AdaptiveGuardedModel,
    GuardedClassModel,
)

DIM, K = 257, 4


def make_guard(replicas=1, seed=0, **kwargs):
    base = PackedClassModel(random_hypervector(DIM, seed, shape=(K,)))
    return GuardedClassModel(base, replicas=replicas, check="ecc",
                             seed_or_rng=seed, **kwargs)


class TestFootprint:
    def test_single_replica_ecc_beats_tmr_bytes(self):
        ecc = make_guard(replicas=1)
        tmr = GuardedClassModel(
            PackedClassModel(random_hypervector(DIM, 0, shape=(K,))),
            replicas=3, check="checksum", seed_or_rng=0)
        assert tmr.nbytes / ecc.nbytes >= 2.5

    def test_parity_sidecar_is_one_byte_per_word(self):
        guard = make_guard(replicas=1)
        words = (DIM + 63) // 64
        assert guard.nbytes == K * words * 8 + K * words

    def test_rung_vocabulary(self):
        guard = make_guard()
        assert set(guard.rungs) == set(REPAIR_RUNGS)
        assert REPAIR_RUNGS == ("ecc", "remat", "vote", "degrade")


class TestLadder:
    def test_single_bit_flip_lands_on_ecc_rung(self):
        guard = make_guard(replicas=1)
        golden = guard.replicas.copy()
        guard.replicas[0, 2, 0] ^= np.uint64(1 << 13)
        assert guard.scrub(force=True) == 1
        assert np.array_equal(guard.replicas, golden)
        assert guard.rungs["ecc"] == 1
        assert guard.repaired == 1 and guard.unrepairable == 0

    def test_multi_bit_error_falls_through_to_vote_with_replicas(self):
        guard = make_guard(replicas=3)
        golden = guard.replicas.copy()
        guard.replicas[1, 0, 0] ^= np.uint64(0b111)  # 3 flips: ECC aliases
        assert guard.scrub(force=True) >= 1
        assert np.array_equal(guard.replicas, golden)
        assert guard.rungs["vote"] >= 1
        assert guard.unrepairable == 0

    def test_single_replica_unrepairable_degrades_not_silent(self):
        guard = make_guard(replicas=1)
        guard.replicas[0, 1, 0] ^= np.uint64(0b111)  # no vote partner
        assert guard.scrub(force=True) >= 1
        assert guard.unrepairable == 1
        assert guard.degraded_classes == {1}
        assert guard.rungs["degrade"] == 1
        # degraded row became the new reference: next scrub is clean
        assert guard.scrub(force=True) == 0

    def test_parity_refreshed_after_vote_repair(self):
        guard = make_guard(replicas=3)
        guard.replicas[2, 3, 0] ^= np.uint64(0b111)
        guard.scrub(force=True)
        # repaired row must pass a fresh ECC check against its sidecar
        assert guard.scrub(force=True) == 0


class TestAdaptiveRematRung:
    def make_adaptive(self, replicas=1):
        rng = np.random.default_rng(0)
        rows = random_hypervector(DIM, 1, shape=(K,))
        base = PackedClassModel(rows)
        guard = AdaptiveGuardedModel(base, replicas=replicas, check="ecc",
                                     seed_or_rng=2)
        return guard

    def test_multi_bit_error_repaired_by_counter_remat(self):
        guard = self.make_adaptive(replicas=1)
        golden = guard.replicas.copy()
        guard.replicas[0, 0, 0] ^= np.uint64(0b111)  # beyond SEC-DED
        assert guard.scrub(force=True) >= 1
        assert np.array_equal(guard.replicas, golden)
        assert guard.rungs["remat"] >= 1
        assert guard.unrepairable == 0


class TestInferenceStaysCorrect:
    def test_scores_equal_unguarded_after_ecc_repair(self):
        base = PackedClassModel(random_hypervector(DIM, 3, shape=(K,)))
        guard = make_guard(replicas=1, seed=3, scrub_every=1)
        queries = pack_bits(random_hypervector(DIM, 4, shape=(16,)))
        clean = base.predict(queries)
        guard.replicas[0, 0, 0] ^= np.uint64(1 << 5)
        assert np.array_equal(guard.predict(queries), clean)
        assert guard.rungs["ecc"] >= 1

"""Tests for the self-repairing guarded class model (reliability/guard.py)."""

import numpy as np
import pytest

from repro.core.hypervector import pack_bits, random_hypervector
from repro.core.packed import PackedClassModel
from repro.reliability import GuardedClassModel


def make_model(dim=257, n_classes=4, seed=0):
    return PackedClassModel(random_hypervector(dim, seed, shape=(n_classes,)))


def make_queries(model, n=32, seed=1):
    return pack_bits(random_hypervector(model.dim, seed, shape=(n,)))


class TestConstruction:
    def test_accepts_packed_model_and_bipolar_matrix(self):
        base = make_model()
        from_packed = GuardedClassModel(base, seed_or_rng=0)
        from_dense = GuardedClassModel(
            random_hypervector(64, 0, shape=(2,)), seed_or_rng=0)
        assert from_packed.n_replicas == 3
        assert from_dense.n_classes == 2

    def test_even_or_nonpositive_replicas_rejected(self):
        base = make_model()
        for bad in (0, 2, 4, -1):
            with pytest.raises(ValueError):
                GuardedClassModel(base, replicas=bad)

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError):
            GuardedClassModel(make_model(), check="parity")

    def test_footprint_scales_with_replicas(self):
        base = make_model()
        guarded = GuardedClassModel(base, replicas=5)
        assert guarded.nbytes == 5 * base.nbytes


class TestCleanSemantics:
    def test_matches_unguarded_model_exactly(self):
        base = make_model()
        guarded = GuardedClassModel(base, seed_or_rng=0)
        queries = make_queries(base)
        assert (guarded.distances(queries) == base.distances(queries)).all()
        assert np.allclose(guarded.similarities(queries),
                           base.similarities(queries))
        assert (guarded.predict(queries) == base.predict(queries)).all()

    def test_clean_scrub_detects_nothing(self):
        guarded = GuardedClassModel(make_model(), seed_or_rng=0)
        assert guarded.scrub(force=True) == 0
        assert guarded.stats()["detected"] == 0


class TestRepair:
    def test_three_replicas_restore_exact_clean_predictions(self):
        # the acceptance scenario: 5% of one replica's words replaced with
        # garbage; inference through the guard must equal the clean model
        base = make_model(dim=1024, n_classes=3)
        queries = make_queries(base, n=64)
        clean = base.predict(queries)
        guarded = GuardedClassModel(base, replicas=3, seed_or_rng=0)
        corrupted = guarded.corrupt_replica(0, word_rate=0.05, seed_or_rng=7)
        assert corrupted > 0
        assert (guarded.predict(queries) == clean).all()
        assert (guarded.replicas == base.packed[None]).all()  # fully healed
        stats = guarded.stats()
        assert stats["repaired"] > 0 and stats["unrepairable"] == 0
        assert not guarded.degraded_classes

    def test_repair_survives_two_distinct_corrupt_replicas(self):
        # different replicas corrupted in different words: majority still
        # recovers every bit
        base = make_model(dim=512, n_classes=2)
        guarded = GuardedClassModel(base, replicas=3, seed_or_rng=0)
        guarded.corrupt_replica(0, 0.3, seed_or_rng=1)
        guarded.corrupt_replica(2, 0.3, seed_or_rng=2)
        guarded.scrub()
        assert (guarded.replicas == base.packed[None]).all()

    def test_majority_corruption_degrades_gracefully(self):
        # same words trashed identically in 2 of 3 replicas: vote adopts
        # the wrong bits; the class is flagged, inference keeps running
        base = make_model(dim=256, n_classes=2)
        guarded = GuardedClassModel(base, replicas=3, seed_or_rng=0)
        garbage = guarded.replicas[0].copy()
        garbage[0] ^= np.uint64(0xFF)
        guarded.replicas[0] = garbage
        guarded.replicas[1] = garbage
        guarded.scrub()
        assert guarded.degraded_classes == {0}
        assert guarded.stats()["unrepairable"] == 1
        # the voted (wrong) row is now the stable reference: a further
        # scrub is quiet and predictions stay well-formed
        assert guarded.scrub(force=True) == 0
        preds = guarded.predict(make_queries(base))
        assert set(np.unique(preds)) <= {0, 1}

    def test_single_replica_is_detection_only(self):
        base = make_model(dim=128, n_classes=2)
        guarded = GuardedClassModel(base, replicas=1, seed_or_rng=0)
        guarded.corrupt_replica(0, 0.5, seed_or_rng=3)
        guarded.scrub()
        assert guarded.stats()["unrepairable"] >= 1
        assert guarded.degraded_classes


class TestScrubCadence:
    def test_scrub_every_n_calls(self):
        guarded = GuardedClassModel(make_model(), scrub_every=3, seed_or_rng=0)
        queries = make_queries(guarded)
        for _ in range(6):
            guarded.predict(queries)
        assert guarded.scrubs == 2

    def test_corruption_between_scrubs_is_visible_then_healed(self):
        base = make_model(dim=1024, n_classes=2)
        queries = make_queries(base, n=16)
        clean = base.distances(queries)
        guarded = GuardedClassModel(base, replicas=3, scrub_every=2,
                                    seed_or_rng=0)
        guarded.corrupt_replica(0, 0.5, seed_or_rng=4)
        first = guarded.distances(queries)   # call 1: no scrub yet
        assert (first != clean).any()
        second = guarded.distances(queries)  # call 2: scrub repairs first
        assert (second == clean).all()


class TestCanary:
    def test_canary_detects_active_replica_corruption(self):
        guarded = GuardedClassModel(make_model(dim=512), check="canary",
                                    seed_or_rng=0)
        assert guarded.canary_ok()
        guarded.corrupt_replica(0, 0.5, seed_or_rng=5)
        assert not guarded.canary_ok()

    def test_canary_scrub_short_circuits_when_clean(self):
        guarded = GuardedClassModel(make_model(), check="canary",
                                    seed_or_rng=0)
        assert guarded.scrub() == 0
        assert guarded.stats()["scrubs"] == 0       # digest pass skipped
        assert guarded.stats()["canary_checks"] == 1

    def test_canary_triggers_full_repair(self):
        base = make_model(dim=1024, n_classes=2)
        guarded = GuardedClassModel(base, replicas=3, check="canary",
                                    seed_or_rng=0)
        guarded.corrupt_replica(0, 0.5, seed_or_rng=6)
        assert guarded.scrub() > 0
        assert (guarded.replicas == base.packed[None]).all()


class TestCorruptReplica:
    def test_bad_word_rate(self):
        guarded = GuardedClassModel(make_model(), seed_or_rng=0)
        with pytest.raises(ValueError):
            guarded.corrupt_replica(0, 1.5)

    def test_pad_bits_stay_clear(self):
        from repro.core.hypervector import packed_tail_mask
        guarded = GuardedClassModel(make_model(dim=70), seed_or_rng=0)
        guarded.corrupt_replica(1, 1.0, seed_or_rng=0)
        assert (guarded.replicas[1] & ~packed_tail_mask(70) == 0).all()

"""Tests for the self-repairing guarded class model (reliability/guard.py)."""

import numpy as np
import pytest

from repro.core.hypervector import pack_bits, random_hypervector, unpack_bits
from repro.core.packed import PackedClassModel
from repro.learning.online import OnlineUpdate
from repro.reliability import AdaptiveGuardedModel, GuardedClassModel


def make_model(dim=257, n_classes=4, seed=0):
    return PackedClassModel(random_hypervector(dim, seed, shape=(n_classes,)))


def make_queries(model, n=32, seed=1):
    return pack_bits(random_hypervector(model.dim, seed, shape=(n,)))


def near_votes(base, class_id, n, flip_frac=0.03, seed=0):
    """Packed votes that mostly agree with one class row (gradual drift)."""
    rng = np.random.default_rng(seed)
    row = unpack_bits(base.packed[class_id], base.dim)
    target = row.copy()
    flips = rng.random(base.dim) < flip_frac
    target[flips] = -target[flips]
    return pack_bits(np.repeat(target[None], n, axis=0))


def complement_votes(base, class_id, n):
    """Packed votes opposing every bit of one class row (label poison)."""
    row = unpack_bits(base.packed[class_id], base.dim)
    return pack_bits(np.repeat(-row[None], n, axis=0))


class TestConstruction:
    def test_accepts_packed_model_and_bipolar_matrix(self):
        base = make_model()
        from_packed = GuardedClassModel(base, seed_or_rng=0)
        from_dense = GuardedClassModel(
            random_hypervector(64, 0, shape=(2,)), seed_or_rng=0)
        assert from_packed.n_replicas == 3
        assert from_dense.n_classes == 2

    def test_even_or_nonpositive_replicas_rejected(self):
        base = make_model()
        for bad in (0, 2, 4, -1):
            with pytest.raises(ValueError):
                GuardedClassModel(base, replicas=bad)

    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError):
            GuardedClassModel(make_model(), check="parity")

    def test_footprint_scales_with_replicas(self):
        base = make_model()
        guarded = GuardedClassModel(base, replicas=5)
        assert guarded.nbytes == 5 * base.nbytes


class TestCleanSemantics:
    def test_matches_unguarded_model_exactly(self):
        base = make_model()
        guarded = GuardedClassModel(base, seed_or_rng=0)
        queries = make_queries(base)
        assert (guarded.distances(queries) == base.distances(queries)).all()
        assert np.allclose(guarded.similarities(queries),
                           base.similarities(queries))
        assert (guarded.predict(queries) == base.predict(queries)).all()

    def test_clean_scrub_detects_nothing(self):
        guarded = GuardedClassModel(make_model(), seed_or_rng=0)
        assert guarded.scrub(force=True) == 0
        assert guarded.stats()["detected"] == 0


class TestRepair:
    def test_three_replicas_restore_exact_clean_predictions(self):
        # the acceptance scenario: 5% of one replica's words replaced with
        # garbage; inference through the guard must equal the clean model
        base = make_model(dim=1024, n_classes=3)
        queries = make_queries(base, n=64)
        clean = base.predict(queries)
        guarded = GuardedClassModel(base, replicas=3, seed_or_rng=0)
        corrupted = guarded.corrupt_replica(0, word_rate=0.05, seed_or_rng=7)
        assert corrupted > 0
        assert (guarded.predict(queries) == clean).all()
        assert (guarded.replicas == base.packed[None]).all()  # fully healed
        stats = guarded.stats()
        assert stats["repaired"] > 0 and stats["unrepairable"] == 0
        assert not guarded.degraded_classes

    def test_repair_survives_two_distinct_corrupt_replicas(self):
        # different replicas corrupted in different words: majority still
        # recovers every bit
        base = make_model(dim=512, n_classes=2)
        guarded = GuardedClassModel(base, replicas=3, seed_or_rng=0)
        guarded.corrupt_replica(0, 0.3, seed_or_rng=1)
        guarded.corrupt_replica(2, 0.3, seed_or_rng=2)
        guarded.scrub()
        assert (guarded.replicas == base.packed[None]).all()

    def test_majority_corruption_degrades_gracefully(self):
        # same words trashed identically in 2 of 3 replicas: vote adopts
        # the wrong bits; the class is flagged, inference keeps running
        base = make_model(dim=256, n_classes=2)
        guarded = GuardedClassModel(base, replicas=3, seed_or_rng=0)
        garbage = guarded.replicas[0].copy()
        garbage[0] ^= np.uint64(0xFF)
        guarded.replicas[0] = garbage
        guarded.replicas[1] = garbage
        guarded.scrub()
        assert guarded.degraded_classes == {0}
        assert guarded.stats()["unrepairable"] == 1
        # the voted (wrong) row is now the stable reference: a further
        # scrub is quiet and predictions stay well-formed
        assert guarded.scrub(force=True) == 0
        preds = guarded.predict(make_queries(base))
        assert set(np.unique(preds)) <= {0, 1}

    def test_single_replica_is_detection_only(self):
        base = make_model(dim=128, n_classes=2)
        guarded = GuardedClassModel(base, replicas=1, seed_or_rng=0)
        guarded.corrupt_replica(0, 0.5, seed_or_rng=3)
        guarded.scrub()
        assert guarded.stats()["unrepairable"] >= 1
        assert guarded.degraded_classes


class TestScrubCadence:
    def test_scrub_every_n_calls(self):
        guarded = GuardedClassModel(make_model(), scrub_every=3, seed_or_rng=0)
        queries = make_queries(guarded)
        for _ in range(6):
            guarded.predict(queries)
        assert guarded.scrubs == 2

    def test_corruption_between_scrubs_is_visible_then_healed(self):
        base = make_model(dim=1024, n_classes=2)
        queries = make_queries(base, n=16)
        clean = base.distances(queries)
        guarded = GuardedClassModel(base, replicas=3, scrub_every=2,
                                    seed_or_rng=0)
        guarded.corrupt_replica(0, 0.5, seed_or_rng=4)
        first = guarded.distances(queries)   # call 1: no scrub yet
        assert (first != clean).any()
        second = guarded.distances(queries)  # call 2: scrub repairs first
        assert (second == clean).all()


class TestCanary:
    def test_canary_detects_active_replica_corruption(self):
        guarded = GuardedClassModel(make_model(dim=512), check="canary",
                                    seed_or_rng=0)
        assert guarded.canary_ok()
        guarded.corrupt_replica(0, 0.5, seed_or_rng=5)
        assert not guarded.canary_ok()

    def test_canary_scrub_short_circuits_when_clean(self):
        guarded = GuardedClassModel(make_model(), check="canary",
                                    seed_or_rng=0)
        assert guarded.scrub() == 0
        assert guarded.stats()["scrubs"] == 0       # digest pass skipped
        assert guarded.stats()["canary_checks"] == 1

    def test_canary_triggers_full_repair(self):
        base = make_model(dim=1024, n_classes=2)
        guarded = GuardedClassModel(base, replicas=3, check="canary",
                                    seed_or_rng=0)
        guarded.corrupt_replica(0, 0.5, seed_or_rng=6)
        assert guarded.scrub() > 0
        assert (guarded.replicas == base.packed[None]).all()


class TestCorruptReplica:
    def test_bad_word_rate(self):
        guarded = GuardedClassModel(make_model(), seed_or_rng=0)
        with pytest.raises(ValueError):
            guarded.corrupt_replica(0, 1.5)

    def test_pad_bits_stay_clear(self):
        from repro.core.hypervector import packed_tail_mask
        guarded = GuardedClassModel(make_model(dim=70), seed_or_rng=0)
        guarded.corrupt_replica(1, 1.0, seed_or_rng=0)
        assert (guarded.replicas[1] & ~packed_tail_mask(70) == 0).all()


class TestPackedCompatSurface:
    """Guarded models must walk the same model= paths as PackedClassModel."""

    def test_n_words_matches_base(self):
        base = make_model(dim=257)
        assert GuardedClassModel(base, seed_or_rng=0).n_words == base.n_words

    def test_distance_block_matches_base(self):
        base = make_model(dim=300, n_classes=3)
        guarded = GuardedClassModel(base, seed_or_rng=0)
        queries = make_queries(base, n=8)
        for w0, w1 in [(0, 2), (1, 4), (0, base.n_words), (3, base.n_words)]:
            assert np.array_equal(guarded.distance_block(queries, w0, w1),
                                  base.distance_block(queries, w0, w1))

    def test_distance_block_accepts_block_slices(self):
        base = make_model(dim=300, n_classes=3)
        guarded = GuardedClassModel(base, seed_or_rng=0)
        queries = make_queries(base, n=8)
        assert np.array_equal(guarded.distance_block(queries[:, 1:4], 1, 4),
                              base.distance_block(queries, 1, 4))

    def test_distance_block_scrubs_corruption(self):
        base = make_model(dim=1024, n_classes=2)
        guarded = GuardedClassModel(base, replicas=3, seed_or_rng=0)
        guarded.corrupt_replica(0, 0.5, seed_or_rng=9)
        got = guarded.distance_block(make_queries(base, n=4), 0, 4)
        assert np.array_equal(got, base.distance_block(make_queries(base,
                                                                    n=4),
                                                       0, 4))


class TestAdaptiveClean:
    def test_small_clean_update_is_applied(self):
        base = make_model(dim=1024)
        adaptive = AdaptiveGuardedModel(base, seed_or_rng=0, prior=32)
        votes = near_votes(base, 0, n=4, seed=1)
        verdict = adaptive.propose(OnlineUpdate(0, votes))
        assert verdict["applied"] and verdict["reason"] is None
        assert verdict["diverged"] == []
        assert adaptive.applied == 1 and adaptive.rejected == 0

    def test_committed_update_changes_served_rows_and_stays_scrubbed(self):
        # prior 4, 6 consistent near-votes: the served row moves to the
        # vote target; golden digests follow, so the scrubber is quiet
        base = make_model(dim=1024)
        adaptive = AdaptiveGuardedModel(base, seed_or_rng=0, prior=4,
                                        max_step_frac=0.06)
        votes = near_votes(base, 1, n=6, flip_frac=0.03, seed=2)
        verdict = adaptive.propose(OnlineUpdate(1, votes))
        assert verdict["applied"]
        assert verdict["step_bits"] > 0
        assert not np.array_equal(adaptive.replicas[0, 1], base.packed[1])
        assert adaptive.scrub(force=True) == 0
        # served rows stay bitwise equal to the counters' rematerialization
        assert np.array_equal(adaptive.replicas[0],
                              adaptive.counters[0].materialize())

    def test_inference_tracks_committed_updates(self):
        base = make_model(dim=1024)
        adaptive = AdaptiveGuardedModel(base, seed_or_rng=0, prior=4,
                                        max_step_frac=0.06)
        adaptive.propose(OnlineUpdate(0, near_votes(base, 0, 6, seed=3)))
        queries = make_queries(base, n=16)
        direct = adaptive.counters[0].as_model()
        assert np.array_equal(adaptive.distances(queries),
                              direct.distances(queries))

    def test_gradual_drift_keeps_passing(self):
        # many small steps, each within the bound: all commit; the probe
        # set re-anchors after each commit so drift never strands it
        base = make_model(dim=1024)
        adaptive = AdaptiveGuardedModel(base, seed_or_rng=0, prior=4,
                                        max_step_frac=0.06)
        for step in range(8):
            current = adaptive.counters[0].as_model()
            votes = near_votes(current, 0, n=5, flip_frac=0.02,
                               seed=10 + step)
            verdict = adaptive.propose(OnlineUpdate(0, votes))
            assert verdict["applied"], verdict
        assert adaptive.applied == 8

    def test_out_of_range_label_rejected(self):
        adaptive = AdaptiveGuardedModel(make_model(), seed_or_rng=0)
        with pytest.raises(ValueError):
            adaptive.propose(OnlineUpdate(9, make_queries(adaptive, n=2)))


class TestAdaptivePoison:
    def test_label_poison_rejected_and_rows_untouched(self):
        # 2x-prior complement votes would rewrite the whole class row -
        # far past the per-proposal step bound, so the proposal is vetoed
        base = make_model(dim=1024)
        adaptive = AdaptiveGuardedModel(base, seed_or_rng=0, prior=32)
        poison = complement_votes(base, 0, n=64)
        verdict = adaptive.propose(OnlineUpdate(0, poison))
        assert not verdict["applied"]
        assert verdict["reason"] == "step_bound"
        assert verdict["step_bits"] > adaptive.max_step_bits
        assert adaptive.rejected == 1
        # served rows never saw the poison
        assert np.array_equal(adaptive.replicas[0], base.packed)
        assert adaptive.scrub(force=True) == 0

    def test_poisoned_replica_outvoted_and_counters_healed(self):
        # the delivery-corruption case: replica 1 receives a poisoned
        # payload; its rematerialized row diverges, the majority outvotes
        # it and its counters are restored from a healthy replica
        base = make_model(dim=1024)
        adaptive = AdaptiveGuardedModel(base, seed_or_rng=0, prior=4,
                                        max_step_frac=0.06)
        clean = near_votes(base, 0, n=6, seed=4)
        poison = complement_votes(base, 0, n=6)
        verdict = adaptive.propose(
            OnlineUpdate(0, clean, replica_payloads={1: poison}))
        assert verdict["diverged"] == [1]
        assert adaptive.outvoted == 1
        assert verdict["applied"]  # the clean majority still commits
        for r in range(adaptive.n_replicas):
            assert np.array_equal(adaptive.counters[r].materialize(),
                                  adaptive.counters[0].materialize())
        assert np.array_equal(adaptive.replicas[0],
                              adaptive.counters[0].materialize())

    def test_rejection_rolls_back_through_state_dict(self):
        # the caller-side contract: snapshot before propose, restore on
        # rejection -> the whole model (counters included) is bitwise back
        base = make_model(dim=1024)
        adaptive = AdaptiveGuardedModel(base, seed_or_rng=0, prior=32)
        adaptive.propose(OnlineUpdate(0, near_votes(base, 0, 4, seed=5)))
        snap = adaptive.state_dict()
        materialized = [cnt.materialize() for cnt in adaptive.counters]
        verdict = adaptive.propose(
            OnlineUpdate(1, complement_votes(base, 1, n=64)))
        assert not verdict["applied"]
        # counters are dirty until the rollback lands
        assert not np.array_equal(adaptive.counters[0].materialize(),
                                  materialized[0])
        adaptive.load_state_dict(snap)
        for cnt, want in zip(adaptive.counters, materialized):
            assert np.array_equal(cnt.materialize(), want)
        assert adaptive.rejected == snap["rejected"]
        assert adaptive.scrub(force=True) == 0

    def test_probe_check_rejects_class_collapse(self):
        # two near-identical classes: pulling class 0 onto class 1 within
        # the step bound still strands class 1's probes -> probe veto
        bip = random_hypervector(1024, 3, shape=(2,))
        bip[1] = bip[0]
        flip = np.zeros(1024, dtype=bool)
        flip[:40] = True
        bip[1, flip] = -bip[1, flip]
        base = PackedClassModel(bip)
        adaptive = AdaptiveGuardedModel(base, seed_or_rng=0, prior=2,
                                        max_step_frac=0.08,
                                        probe_flip=0.004)
        votes = pack_bits(np.repeat(
            unpack_bits(base.packed[1], 1024)[None], 4, axis=0))
        verdict = adaptive.propose(OnlineUpdate(0, votes))
        assert not verdict["applied"]
        assert verdict["reason"] == "probe_check"


class TestAdaptiveStats:
    def test_stats_extend_guard_counters(self):
        adaptive = AdaptiveGuardedModel(make_model(dim=512), seed_or_rng=0,
                                        prior=4, max_step_frac=0.06)
        base = adaptive.counters[0].as_model()
        adaptive.propose(OnlineUpdate(0, near_votes(base, 0, 5, seed=6)))
        adaptive.propose(OnlineUpdate(1, complement_votes(base, 1, 16)))
        stats = adaptive.stats()
        assert stats["updates_applied"] == 1
        assert stats["updates_rejected"] == 1
        assert stats["replicas_outvoted"] == 0
        assert "detected" in stats and "degraded_classes" in stats
        assert stats["max_step_bits"] == adaptive.max_step_bits

"""Tests for the background memory scrubber (reliability/scrubber.py)."""

import numpy as np

from repro.core import RematerializingItemMemory
from repro.core.hypervector import random_hypervector
from repro.core.packed import PackedClassModel
from repro.reliability import GuardedClassModel, IncidentLog, MemoryScrubber


def make_item(n=256, seed=0, policy="verify", name="item"):
    rng = np.random.default_rng(seed)
    return RematerializingItemMemory.from_array(
        rng.integers(-1, 2, size=n).astype(np.int8), policy=policy,
        name=name)


def make_guard(dim=257, n_classes=4, seed=0, check="ecc", replicas=1):
    base = PackedClassModel(random_hypervector(dim, seed, shape=(n_classes,)))
    return GuardedClassModel(base, replicas=replicas, check=check,
                             seed_or_rng=seed)


class TestBudgetedSweep:
    def test_unbudgeted_tick_sweeps_everything(self):
        scrubber = MemoryScrubber(budget=None)
        items = [make_item(seed=i, name=f"m{i}") for i in range(3)]
        for item in items:
            scrubber.add_item_memory(item)
        scrubber.tick()
        assert all(item.scrub_checks == 1 for item in items)

    def test_budget_rations_targets_per_tick(self):
        items = [make_item(n=512, seed=i, name=f"m{i}") for i in range(4)]
        scrubber = MemoryScrubber(budget=items[0].nbytes)
        for item in items:
            scrubber.add_item_memory(item)
        scrubber.tick()
        # one target's worth of budget: not everything was swept yet
        assert sum(item.scrub_checks for item in items) < len(items)
        for _ in range(16):
            scrubber.tick()
        # ...but round-robin credit reaches every target eventually
        assert all(item.scrub_checks >= 1 for item in items)

    def test_sweep_ignores_budget(self):
        items = [make_item(n=512, seed=i, name=f"m{i}") for i in range(4)]
        scrubber = MemoryScrubber(budget=1)
        for item in items:
            scrubber.add_item_memory(item)
        scrubber.sweep()
        assert all(item.scrub_checks == 1 for item in items)


class TestRepairAndIncidents:
    def test_corrupted_item_memory_repaired_and_logged(self):
        log = IncidentLog()
        item = make_item()
        golden = item.array().copy()
        scrubber = MemoryScrubber(budget=None, incidents=log)
        scrubber.add_item_memory(item)
        item.corrupt(0.05, seed_or_rng=1)
        scrubber.sweep()
        assert np.array_equal(item.array(), golden)
        assert scrubber.repaired >= 1
        assert log.count("row_repaired") >= 1
        assert log.count("memory_scrubbed") >= 1

    def test_guard_target_routes_through_repair_ladder(self):
        guard = make_guard()
        scrubber = MemoryScrubber(budget=None)
        scrubber.add_guard(guard)
        guard.replicas[0, 0, 0] ^= np.uint64(1)  # single bit: ECC rung
        scrubber.sweep()
        assert scrubber.detected >= 1
        assert scrubber.repaired >= 1
        assert guard.rungs["ecc"] >= 1

    def test_stats_shape(self):
        scrubber = MemoryScrubber(budget=64)
        scrubber.add_item_memory(make_item())
        scrubber.tick(frame=3)
        stats = scrubber.stats()
        assert stats["budget"] == 64
        assert stats["ticks"] == 1
        assert len(stats["targets"]) == 1
        assert stats["targets"][0]["kind"] == "item"

"""Tests for the packed-word fault models (reliability/faults.py).

The two load-bearing guarantees: pad bits beyond ``dim`` are *never*
touched, and - given equal generator state - the packed flip model is
bit-identical to the dense :func:`repro.noise.bitflip.flip_bipolar` on the
unpacked view (not merely equal in distribution).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypervector import (
    pack_bits,
    packed_tail_mask,
    packed_words,
    random_hypervector,
    unpack_bits,
)
from repro.noise.bitflip import flip_bipolar, stuck_at
from repro.reliability import (
    DetectionFaultInjector,
    PackedFaultInjector,
    flip_packed_words,
    stuck_at_packed,
)

dims = st.integers(min_value=1, max_value=200)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
rates = st.floats(min_value=0.0, max_value=1.0)


class TestFlipPackedWords:
    def test_rate_zero_is_copy(self):
        packed = pack_bits(random_hypervector(256, 0))
        out = flip_packed_words(packed, 256, 0.0)
        assert (out == packed).all()
        assert out is not packed

    def test_rate_one_flips_every_real_bit(self):
        hv = random_hypervector(100, 0)
        out = flip_packed_words(pack_bits(hv), 100, 1.0, 0)
        assert (unpack_bits(out, 100) == -hv).all()

    def test_flip_fraction(self):
        dim = 50000
        packed = pack_bits(random_hypervector(dim, 0))
        out = flip_packed_words(packed, dim, 0.1, 1)
        flipped = np.bitwise_count(out ^ packed).sum()
        assert abs(flipped / dim - 0.1) < 0.01

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            flip_packed_words(pack_bits(np.ones(4, np.int8)), 4, 1.5)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            flip_packed_words(np.ones(4, np.int8), 4, 0.1)

    def test_rejects_wrong_word_count(self):
        packed = pack_bits(random_hypervector(64, 0))
        with pytest.raises(ValueError):
            flip_packed_words(packed, 100, 0.1)  # needs 2 words, got 1

    def test_reproducible(self):
        packed = pack_bits(random_hypervector(1000, 0))
        a = flip_packed_words(packed, 1000, 0.2, 9)
        b = flip_packed_words(packed, 1000, 0.2, 9)
        assert (a == b).all()

    @settings(max_examples=40, deadline=None)
    @given(dim=dims, seed=seeds, rate=rates)
    def test_pad_bits_never_flipped(self, dim, seed, rate):
        # rate 1.0 flips every real bit; pads must still come back zero
        packed = pack_bits(random_hypervector(dim, seed, shape=(3,)))
        out = flip_packed_words(packed, dim, rate, seed)
        assert (out & ~packed_tail_mask(dim) == 0).all()

    @settings(max_examples=40, deadline=None)
    @given(dim=dims, seed=seeds, rate=st.floats(min_value=0.01, max_value=0.99))
    def test_bit_identical_to_dense_flips(self, dim, seed, rate):
        # same generator state => identical fault positions, including in
        # the tail word of odd dimensionalities
        hv = random_hypervector(dim, seed, shape=(2,))
        packed_out = flip_packed_words(
            pack_bits(hv), dim, rate, np.random.default_rng(seed))
        dense_out = flip_bipolar(hv, rate, np.random.default_rng(seed))
        assert (packed_out == pack_bits(dense_out)).all()

    def test_flip_count_distribution_matches_dense(self):
        # chi-squared over per-vector flip counts: packed and dense draws
        # at the same rate come from the same binomial (odd D exercises
        # the tail word)
        from scipy.stats import chisquare
        dim, n, rate = 101, 4000, 0.25
        hv = random_hypervector(dim, 0, shape=(n,))
        packed = pack_bits(hv)
        dense_counts = (flip_bipolar(hv, rate, 1) != hv).sum(axis=1)
        corrupted = flip_packed_words(packed, dim, rate, 2)
        packed_counts = np.bitwise_count(corrupted ^ packed).sum(axis=1)
        edges = np.array([0, 18, 21, 23, 25, 27, 29, 32, dim + 1])
        dense_hist = np.histogram(dense_counts, bins=edges)[0]
        packed_hist = np.histogram(packed_counts, bins=edges)[0]
        expected = dense_hist * (packed_hist.sum() / dense_hist.sum())
        assert chisquare(packed_hist, expected).pvalue > 1e-4


class TestStuckAtPacked:
    @pytest.mark.parametrize("value", [1, -1])
    def test_matches_dense_stuck_at(self, value):
        dim = 137
        hv = random_hypervector(dim, 3, shape=(2,))
        packed_out = stuck_at_packed(pack_bits(hv), dim, 0.3, value,
                                     np.random.default_rng(5))
        dense_out = stuck_at(hv, 0.3, value, np.random.default_rng(5))
        assert (packed_out == pack_bits(dense_out)).all()

    def test_stuck_low_clears_pads_only_virtually(self):
        dim = 70
        packed = pack_bits(random_hypervector(dim, 0))
        out = stuck_at_packed(packed, dim, 1.0, -1, 0)
        assert (out == 0).all()  # every real bit pinned low, pads already 0

    def test_bad_value(self):
        with pytest.raises(ValueError):
            stuck_at_packed(pack_bits(np.ones(4, np.int8)), 4, 0.1, value=0)


class TestPackedFaultInjector:
    def test_only_listed_stages_corrupted(self):
        packed = pack_bits(random_hypervector(256, 0))
        inj = PackedFaultInjector(0.5, 256, stages=("histogram",),
                                  seed_or_rng=0)
        assert inj(packed, "pixels") is packed
        assert (inj(packed, "histogram") != packed).any()
        assert inj.calls == 1

    def test_rate_zero_is_identity(self):
        packed = pack_bits(random_hypervector(64, 0))
        inj = PackedFaultInjector(0.0, 64)
        assert inj(packed, "histogram") is packed
        assert inj.calls == 0

    def test_stuck_model(self):
        packed = pack_bits(random_hypervector(64, 0))
        inj = PackedFaultInjector(1.0, 64, model="stuck", stuck_value=1,
                                  seed_or_rng=0)
        out = inj(packed, "histogram")
        assert (out == packed_tail_mask(64)).all()

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            PackedFaultInjector(0.1, 64, model="burst")


class TestDetectionFaultInjector:
    def test_dispatches_on_dtype(self):
        dim = 128
        inj = DetectionFaultInjector(1.0, dim, seed_or_rng=0)
        hv = random_hypervector(dim, 0)
        assert (inj(hv, "pixels") == -hv).all()          # dense path
        packed = pack_bits(hv)
        out = inj(packed, "histogram")                    # packed path
        assert out.dtype == np.uint64
        assert (unpack_bits(out, dim) == -hv).all()
        assert inj.calls == 2

    def test_dense_path_handles_integer_bundles(self):
        inj = DetectionFaultInjector(1.0, 4, seed_or_rng=0)
        bundle = np.array([5, -3, 0, 7], dtype=np.int16)
        assert (inj(bundle, "histogram") == -bundle).all()

    def test_skips_unlisted_stage(self):
        inj = DetectionFaultInjector(1.0, 64, stages=("pixels",))
        packed = pack_bits(random_hypervector(64, 0))
        assert inj(packed, "histogram") is packed

"""Tests for the synthetic face / non-face generators."""

import numpy as np
import pytest

from repro.datasets.faces import (
    NONFACE_KINDS,
    FaceParams,
    draw_face,
    draw_nonface,
    make_face_dataset,
    random_face_params,
)


class TestDrawFace:
    def test_range_and_shape(self):
        img = draw_face(48)
        assert img.shape == (48, 48)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_deterministic_without_rng(self):
        assert (draw_face(32) == draw_face(32)).all()

    def test_canonical_geometry(self):
        img = draw_face(48)
        p = FaceParams()
        # head interior is skin-toned, background is darker
        assert img[24, 24] > img[2, 2]
        # eyes darker than surrounding skin
        eye_y = int((p.center_y + p.eye_y * p.head_ry) * 48)
        eye_x = int((p.center_x + p.eye_dx * p.head_rx) * 48)
        assert img[eye_y, eye_x] < img[24, 24]

    def test_scale_invariant_rendering(self):
        small = draw_face(24)
        big = draw_face(96)
        # downsampled large face resembles the small one
        down = big.reshape(24, 4, 24, 4).mean(axis=(1, 3))
        corr = np.corrcoef(small.ravel(), down.ravel())[0, 1]
        assert corr > 0.9

    def test_rng_adds_noise(self, rng):
        p = FaceParams(noise_sigma=0.05, illumination=0.2)
        a = draw_face(32, p, np.random.default_rng(0))
        b = draw_face(32, p, np.random.default_rng(1))
        assert not np.allclose(a, b)

    def test_mouth_openness_draws_mouth_blob(self):
        closed = draw_face(48, FaceParams(mouth_openness=0.0))
        open_ = draw_face(48, FaceParams(mouth_openness=1.0))
        assert not np.allclose(closed, open_)


class TestRandomFaceParams:
    def test_zero_jitter_is_canonical(self, rng):
        p = random_face_params(rng, jitter=0.0)
        canon = FaceParams()
        assert p.center_y == canon.center_y
        assert p.head_ry == canon.head_ry

    def test_jitter_varies(self):
        rng = np.random.default_rng(0)
        a = random_face_params(rng)
        b = random_face_params(rng)
        assert a.center_x != b.center_x

    def test_params_stay_plausible(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = random_face_params(rng)
            assert 0.3 < p.center_y < 0.7
            assert p.head_ry > 0.2
            assert p.mouth_openness >= 0.0


class TestDrawNonface:
    @pytest.mark.parametrize("kind", NONFACE_KINDS)
    def test_all_kinds_render(self, kind, rng):
        img = draw_nonface(32, rng, kind)
        assert img.shape == (32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_unknown_kind_raises(self, rng):
        with pytest.raises(ValueError):
            draw_nonface(32, rng, "fractal")

    def test_random_kind_selection(self):
        rng = np.random.default_rng(0)
        imgs = [draw_nonface(16, rng) for _ in range(8)]
        assert len({img.tobytes() for img in imgs}) == 8


class TestMakeFaceDataset:
    def test_shapes_and_labels(self):
        x, y = make_face_dataset(20, size=24, seed_or_rng=0)
        assert x.shape == (20, 24, 24)
        assert set(np.unique(y)) == {0, 1}

    def test_face_fraction(self):
        x, y = make_face_dataset(40, size=16, face_fraction=0.25, seed_or_rng=0)
        assert y.sum() == 10

    def test_reproducible(self):
        a = make_face_dataset(10, size=16, seed_or_rng=5)
        b = make_face_dataset(10, size=16, seed_or_rng=5)
        assert (a[0] == b[0]).all() and (a[1] == b[1]).all()

    def test_different_seeds_differ(self):
        a, _ = make_face_dataset(10, size=16, seed_or_rng=1)
        b, _ = make_face_dataset(10, size=16, seed_or_rng=2)
        assert not np.allclose(a, b)

    def test_shuffled(self):
        _, y = make_face_dataset(40, size=16, seed_or_rng=0)
        # not all faces first
        assert y[: y.sum()].sum() < y.sum()

    def test_bad_args(self):
        with pytest.raises(ValueError):
            make_face_dataset(0)
        with pytest.raises(ValueError):
            make_face_dataset(10, face_fraction=1.5)

    def test_classes_are_separable(self, face_data):
        # the tasks must be learnable, otherwise every accuracy bench is noise
        xtr, ytr, xte, yte = face_data
        from repro.features import HOGDescriptor
        from repro.learning import LinearSVM
        hog = HOGDescriptor(cell_size=8, n_bins=8)
        ftr, fte = hog.extract_batch(xtr), hog.extract_batch(xte)
        svm = LinearSVM(ftr.shape[1], 2, epochs=15, seed_or_rng=0).fit(ftr, ytr)
        assert svm.score(fte, yte) > 0.8

"""Tests for the Table 1 dataset registry."""

import pytest

from repro.datasets.registry import SPECS, DatasetSpec, load, names


class TestSpecs:
    def test_table1_names(self):
        assert names() == ["EMOTION", "FACE1", "FACE2"]

    def test_paper_scale_matches_table1(self):
        emotion = SPECS[("EMOTION", "paper")]
        assert emotion.image_size == 48
        assert emotion.n_classes == 7
        assert emotion.train_size == 36685
        face1 = SPECS[("FACE1", "paper")]
        assert face1.image_size == 1024 and face1.train_size == 40172
        face2 = SPECS[("FACE2", "paper")]
        assert face2.image_size == 512 and face2.train_size == 522441

    def test_all_scales_present(self):
        for name in names():
            for scale in ("paper", "bench", "test"):
                assert (name, scale) in SPECS

    def test_bench_smaller_than_paper(self):
        for name in names():
            assert SPECS[(name, "bench")].train_size < SPECS[(name, "paper")].train_size


class TestLoad:
    def test_load_test_scale(self):
        xtr, ytr, xte, yte = load("EMOTION", scale="test", seed=0)
        spec = SPECS[("EMOTION", "test")]
        assert xtr.shape == (spec.train_size, spec.image_size, spec.image_size)
        assert len(xte) == spec.test_size
        assert ytr.max() < spec.n_classes

    def test_load_face_binary(self):
        _, ytr, _, _ = load("FACE1", scale="test", seed=0)
        assert set(ytr) <= {0, 1}

    def test_case_insensitive(self):
        a = load("face2", scale="test", seed=1)
        b = load("FACE2", scale="test", seed=1)
        assert (a[0] == b[0]).all()

    def test_deterministic_per_seed(self):
        a = load("EMOTION", scale="test", seed=4)
        b = load("EMOTION", scale="test", seed=4)
        assert (a[0] == b[0]).all()

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load("MNIST", scale="test")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            load("EMOTION", scale="huge")


class TestDatasetSpecGenerate:
    def test_split_sizes(self):
        spec = DatasetSpec("X", 16, 2, 10, 5, "custom")
        xtr, ytr, xte, yte = spec.generate(0)
        assert len(xtr) == 10 and len(xte) == 5

    def test_seven_class_routes_to_emotion(self):
        spec = DatasetSpec("X", 16, 7, 14, 7, "custom")
        _, ytr, _, _ = spec.generate(0)
        assert ytr.max() >= 2  # more than binary labels present

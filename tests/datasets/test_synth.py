"""Tests for the procedural drawing primitives."""

import numpy as np
import pytest

from repro.datasets import synth


class TestBlank:
    def test_shape_and_value(self):
        img = synth.blank(8, 0.3)
        assert img.shape == (8, 8) and (img == 0.3).all()

    def test_bad_size(self):
        with pytest.raises(ValueError):
            synth.blank(0)


class TestNormalize:
    def test_clips(self):
        out = synth.normalize01(np.array([-1.0, 0.5, 2.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]


class TestEllipse:
    def test_center_painted(self):
        img = synth.blank(16)
        synth.add_ellipse(img, 8, 8, 4, 4, 1.0)
        assert img[8, 8] == pytest.approx(1.0)

    def test_outside_untouched(self):
        img = synth.blank(16)
        synth.add_ellipse(img, 8, 8, 3, 3, 1.0, softness=0.0)
        assert img[0, 0] == 0.0

    def test_soft_edge_intermediate(self):
        img = synth.blank(32)
        synth.add_ellipse(img, 16, 16, 8, 8, 1.0, softness=2.0)
        edge_vals = img[16, 22:27]
        assert ((edge_vals > 0.01) & (edge_vals < 0.99)).any()

    def test_rotation_changes_footprint(self):
        a = synth.add_ellipse(synth.blank(32), 16, 16, 12, 4, 1.0)
        b = synth.add_ellipse(synth.blank(32), 16, 16, 12, 4, 1.0, angle=np.pi / 2)
        assert not np.allclose(a, b)
        # 90-degree rotation is a transpose of the footprint
        assert np.allclose(a, b.T, atol=0.35)

    def test_bad_radii(self):
        with pytest.raises(ValueError):
            synth.add_ellipse(synth.blank(8), 4, 4, 0, 2, 1.0)

    def test_occlusion_order(self):
        img = synth.blank(16, 0.0)
        synth.add_ellipse(img, 8, 8, 6, 6, 0.5)
        synth.add_ellipse(img, 8, 8, 2, 2, 1.0, softness=0.0)
        assert img[8, 8] == 1.0


class TestStroke:
    def test_line_painted_along_path(self):
        img = synth.blank(16)
        synth.add_stroke(img, 2, 2, 13, 13, 1.0, thickness=1.5)
        assert img[7, 7] > 0.5 and img[8, 8] > 0.5

    def test_degenerate_stroke_is_dot(self):
        img = synth.blank(16)
        synth.add_stroke(img, 8, 8, 8, 8, 1.0, thickness=2.0)
        assert img[8, 8] > 0.5
        assert img[0, 0] == 0.0


class TestCurve:
    def test_smile_ends_above_center(self):
        img = synth.blank(32)
        synth.add_curve(img, 20, 16, 10, 5.0, 1.0, thickness=1.5)
        center_rows = np.nonzero(img[:, 16])[0]
        end_rows = np.nonzero(img[:, 6])[0]
        assert end_rows.mean() < center_rows.mean()  # ends bend up

    def test_bad_width(self):
        with pytest.raises(ValueError):
            synth.add_curve(synth.blank(8), 4, 4, 0, 1.0, 1.0)


class TestTextures:
    def test_grating_periodicity(self):
        img = synth.blank(32, 0.5)
        synth.add_grating(img, period=8, angle=0.0, contrast=1.0)
        # horizontal axis: values repeat every 8 columns
        assert np.allclose(img[0, 0], img[0, 8], atol=1e-6)

    def test_grating_bad_period(self):
        with pytest.raises(ValueError):
            synth.add_grating(synth.blank(8), 0, 0.0)

    def test_blob_texture_range(self, rng):
        img = synth.blob_texture(32, rng)
        assert img.shape == (32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_smooth_noise_is_smooth(self, rng):
        img = synth.smooth_noise(64, rng)
        rough = np.abs(np.diff(np.random.default_rng(0).random(64))).mean()
        smooth = np.abs(np.diff(img[32])).mean()
        assert smooth < rough / 2

    def test_rectangle_clipped(self):
        img = synth.blank(8)
        synth.add_rectangle(img, -5, -5, 4, 4, 1.0)
        assert img[0, 0] == 1.0 and img[5, 5] == 0.0


class TestPhotometric:
    def test_illumination_gradient_direction(self):
        img = synth.blank(32, 0.5)
        out = synth.illumination_gradient(img, 0.5, 0.0)  # ramp along x
        assert out[:, -1].mean() > out[:, 0].mean()

    def test_illumination_preserves_range(self):
        out = synth.illumination_gradient(synth.blank(16, 1.0), 0.8, 1.0)
        assert out.max() <= 1.0

    def test_sensor_noise_statistics(self, rng):
        out = synth.add_sensor_noise(synth.blank(64, 0.5), 0.05, rng)
        assert abs(out.std() - 0.05) < 0.01

    def test_sensor_noise_negative_sigma(self, rng):
        with pytest.raises(ValueError):
            synth.add_sensor_noise(synth.blank(8), -0.1, rng)

    def test_rotation_preserves_shape_and_range(self):
        img = synth.add_ellipse(synth.blank(32), 16, 16, 10, 4, 1.0)
        out = synth.rotate_image(img, 15.0)
        assert out.shape == img.shape
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestMovingFaceSequence:
    def test_shapes_truth_and_determinism(self):
        frames, truth = synth.moving_face_sequence(48, 6, window=24, step=2,
                                                   seed_or_rng=3)
        assert len(frames) == len(truth) == 6
        assert all(f.shape == (48, 48) for f in frames)
        assert all(0.0 <= f.min() and f.max() <= 1.0 for f in frames)
        for y, x, w in truth:
            assert w == 24 and 0 <= y <= 24 and 0 <= x <= 24
        again, truth2 = synth.moving_face_sequence(48, 6, window=24, step=2,
                                                   seed_or_rng=3)
        assert truth == truth2
        assert all(np.array_equal(a, b) for a, b in zip(frames, again))

    def test_consecutive_frames_share_most_pixels(self):
        frames, _ = synth.moving_face_sequence(96, 5, window=24, step=2,
                                               seed_or_rng=0)
        for prev, cur in zip(frames, frames[1:]):
            changed = (prev != cur).mean()
            assert 0.0 < changed < 0.25  # motion, but mostly static

    def test_face_moves_along_the_path(self):
        _, truth = synth.moving_face_sequence(64, 8, window=24, step=3,
                                              seed_or_rng=1)
        assert len({(y, x) for y, x, _ in truth}) > 1

    def test_noise_touches_every_frame(self):
        frames, _ = synth.moving_face_sequence(48, 3, window=24, step=0,
                                               noise_sigma=0.05, seed_or_rng=2)
        assert (frames[0] != frames[1]).mean() > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            synth.moving_face_sequence(32, 0, window=24)
        with pytest.raises(ValueError):
            synth.moving_face_sequence(16, 3, window=24)


class TestShrinkPatch:
    def test_identity_at_full_scale(self):
        patch = synth.smooth_noise(24, np.random.default_rng(0))
        assert synth.shrink_patch(patch, 1.0) is patch

    def test_centered_on_flat_surround(self):
        patch = synth.smooth_noise(24, np.random.default_rng(1))
        out = synth.shrink_patch(patch, 0.5, fill=0.5)
        assert out.shape == patch.shape
        assert (out[0] == 0.5).all() and (out[:, 0] == 0.5).all()
        assert (out[6:18, 6:18] != 0.5).any()  # the face survives inside

    def test_inner_size_floor(self):
        patch = synth.smooth_noise(16, np.random.default_rng(2))
        out = synth.shrink_patch(patch, 0.01)
        assert (out[4:12, 4:12] != out[0, 0]).any()  # floored at 8 px

    def test_validation(self):
        patch = synth.blank(16)
        for scale in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                synth.shrink_patch(patch, scale)


class TestDriftingFaceSequence:
    def test_shapes_truth_and_determinism(self):
        kw = dict(window=24, step=2, warmup=2, seed_or_rng=5)
        frames, truth = synth.drifting_face_sequence(48, 8, **kw)
        assert len(frames) == len(truth) == 8
        assert all(f.shape == (48, 48) for f in frames)
        assert all(0.0 <= f.min() and f.max() <= 1.0 for f in frames)
        again, truth2 = synth.drifting_face_sequence(48, 8, **kw)
        assert truth == truth2
        assert all(np.array_equal(a, b) for a, b in zip(frames, again))

    def test_warmup_frames_share_the_undrifted_patch(self):
        frames, truth = synth.drifting_face_sequence(
            64, 6, window=24, step=0, warmup=3, seed_or_rng=7)
        patches = [f[y:y + w, x:x + w] for f, (y, x, w) in zip(frames, truth)]
        assert np.array_equal(patches[0], patches[1])  # inside warmup
        assert not np.array_equal(patches[0], patches[-1])  # fully drifted

    def test_align_keeps_positions_on_the_grid(self):
        _, truth = synth.drifting_face_sequence(
            64, 10, window=24, step=8, align=8, seed_or_rng=3)
        assert all(y % 8 == 0 and x % 8 == 0 for y, x, _ in truth)

    def test_shrink_and_blur_ramps(self):
        frames, truth = synth.drifting_face_sequence(
            48, 6, window=24, step=0, jitter=0.0, max_rotation=0.0,
            max_illumination=0.0, max_contrast_drop=0.0, min_scale=0.5,
            max_blur=1.5, seed_or_rng=9)
        y, x, w = truth[-1]
        last = frames[-1][y:y + w, x:x + w]
        # fully drifted: the face has pulled back onto a flat surround
        # (atol: the defocus blur's tail reaches the border faintly)
        assert np.allclose(last[0], 0.5, atol=1e-2)
        assert np.allclose(last[:, 0], 0.5, atol=1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            synth.drifting_face_sequence(48, 4, warmup=4)
        with pytest.raises(ValueError):
            synth.drifting_face_sequence(48, 4, align=0)
        with pytest.raises(ValueError):
            synth.drifting_face_sequence(48, 4, min_scale=0.0)
        with pytest.raises(ValueError):
            synth.drifting_face_sequence(48, 4, max_blur=-1.0)


class TestDriftingFacePatches:
    def test_shapes_progress_and_determinism(self):
        batches, progress = synth.drifting_face_patches(
            6, 3, size=24, warmup=2, seed_or_rng=11)
        assert len(batches) == len(progress) == 6
        assert all(len(b) == 3 for b in batches)
        assert all(p.shape == (24, 24) for b in batches for p in b)
        assert progress[0] == progress[1] == progress[2] == 0.0
        assert progress[-1] == 1.0
        assert all(a <= b for a, b in zip(progress, progress[1:]))
        again, progress2 = synth.drifting_face_patches(
            6, 3, size=24, warmup=2, seed_or_rng=11)
        assert progress == progress2
        assert all(np.array_equal(p, q)
                   for b1, b2 in zip(batches, again)
                   for p, q in zip(b1, b2))

    def test_fully_drifted_patches_are_shrunken(self):
        batches, _ = synth.drifting_face_patches(
            4, 2, size=24, min_scale=0.5, max_blur=0.0, seed_or_rng=1)
        for patch in batches[-1]:
            assert (patch[0] == 0.5).all() and (patch[:, 0] == 0.5).all()

    def test_fresh_identities_each_step(self):
        batches, _ = synth.drifting_face_patches(
            3, 2, size=24, warmup=2, seed_or_rng=4)
        assert not np.array_equal(batches[0][0], batches[1][0])

    def test_validation(self):
        for kw in (dict(n_steps=0, batch=1), dict(n_steps=2, batch=0),
                   dict(n_steps=2, batch=1, warmup=2),
                   dict(n_steps=2, batch=1, min_scale=1.5),
                   dict(n_steps=2, batch=1, max_blur=-0.1)):
            with pytest.raises(ValueError):
                synth.drifting_face_patches(**kw)

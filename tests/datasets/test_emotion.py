"""Tests for the synthetic 7-class emotion dataset."""

import numpy as np
import pytest

from repro.datasets.emotion import (
    EMOTIONS,
    draw_emotion_face,
    emotion_params,
    make_emotion_dataset,
)


class TestEmotionParams:
    def test_seven_emotions(self):
        assert len(EMOTIONS) == 7

    def test_unknown_emotion_raises(self, rng):
        with pytest.raises(ValueError, match="unknown emotion"):
            emotion_params("bored", rng)

    def test_happy_smiles_sad_frowns(self, rng):
        happy = emotion_params("happy", rng, jitter=0.0)
        sad = emotion_params("sad", rng, jitter=0.0)
        assert happy.mouth_curve > 0 > sad.mouth_curve

    def test_surprise_opens_mouth_and_eyes(self, rng):
        surprise = emotion_params("surprise", rng, jitter=0.0)
        neutral = emotion_params("neutral", rng, jitter=0.0)
        assert surprise.mouth_openness > neutral.mouth_openness
        assert surprise.eye_r > neutral.eye_r

    def test_angry_lowers_brows(self, rng):
        angry = emotion_params("angry", rng, jitter=0.0)
        assert angry.brow_curve < 0


class TestDrawEmotionFace:
    @pytest.mark.parametrize("emotion", EMOTIONS)
    def test_all_emotions_render(self, emotion, rng):
        img = draw_emotion_face(32, emotion, rng)
        assert img.shape == (32, 32)
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_emotions_visually_distinct(self):
        rng = np.random.default_rng(0)
        happy = draw_emotion_face(48, "happy", rng, jitter=0.0)
        rng = np.random.default_rng(0)
        surprise = draw_emotion_face(48, "surprise", rng, jitter=0.0)
        assert np.abs(happy - surprise).max() > 0.2


class TestMakeEmotionDataset:
    def test_shapes(self):
        x, y = make_emotion_dataset(21, size=24, seed_or_rng=0)
        assert x.shape == (21, 24, 24)
        assert y.min() >= 0 and y.max() <= 6

    def test_balanced_classes(self):
        _, y = make_emotion_dataset(70, size=16, seed_or_rng=0)
        counts = np.bincount(y, minlength=7)
        assert (counts == 10).all()

    def test_reproducible(self):
        a = make_emotion_dataset(14, size=16, seed_or_rng=3)
        b = make_emotion_dataset(14, size=16, seed_or_rng=3)
        assert (a[0] == b[0]).all()

    def test_bad_n(self):
        with pytest.raises(ValueError):
            make_emotion_dataset(0)

    def test_classes_learnable_above_chance(self, emotion_data):
        xtr, ytr, xte, yte = emotion_data
        from repro.features import HOGDescriptor
        from repro.learning import LinearSVM
        hog = HOGDescriptor(cell_size=8, n_bins=8)
        ftr, fte = hog.extract_batch(xtr), hog.extract_batch(xte)
        svm = LinearSVM(ftr.shape[1], 7, epochs=15, seed_or_rng=0).fit(ftr, ytr)
        # 7-class chance is ~0.14; the synthetic classes overlap on purpose,
        # so we only require clearly-above-chance performance at this size
        assert svm.score(fte, yte) > 0.3
